/**
 * @file
 * The paper's qualitative claims as executable assertions, driven by
 * the eval sweep harness. If a refactor breaks the reproduction, this
 * file fails -- EXPERIMENTS.md stays honest.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "eval/sweep.hh"

namespace qompress {
namespace {

double
median(std::vector<double> v)
{
    EXPECT_FALSE(v.empty());
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

const std::vector<SweepRecord> &
mainSweep()
{
    static const std::vector<SweepRecord> records = [] {
        SweepSpec spec;
        spec.families = {"cuccaro", "cnu", "qram", "bv",
                         "qaoa_cylinder", "qaoa_torus"};
        spec.sizes = {10, 16, 22, 28};
        spec.strategies = {"qubit_only", "fq", "eqm", "rb", "awe",
                           "pp"};
        return runSweep(spec);
    }();
    return records;
}

auto kGate = [](const Metrics &m) { return m.gateEps; };
auto kCoh = [](const Metrics &m) { return m.coherenceEps; };

TEST(PaperClaims, FqAlwaysLosesToQubitOnly)
{
    // Section 7: "FQ is consistently worse than our qubit-only
    // baseline."
    for (const auto &family :
         {"cuccaro", "cnu", "qram", "bv", "qaoa_cylinder",
          "qaoa_torus"}) {
        for (double r :
             sweepRatios(mainSweep(), family, "fq", "qubit_only",
                         kGate)) {
            EXPECT_LT(r, 1.0) << family;
        }
    }
}

TEST(PaperClaims, EqmAndRbGainOver50PercentOnStructuredCircuits)
{
    // Section 7: "greatest gains ... from EQM and RB strategies, with
    // improvements over 50% for both" on CNU and Cuccaro.
    const auto cuccaro_eqm =
        sweepRatios(mainSweep(), "cuccaro", "eqm", "qubit_only", kGate);
    const auto cuccaro_rb =
        sweepRatios(mainSweep(), "cuccaro", "rb", "qubit_only", kGate);
    EXPECT_GE(*std::max_element(cuccaro_eqm.begin(), cuccaro_eqm.end()),
              1.5);
    EXPECT_GE(*std::max_element(cuccaro_rb.begin(), cuccaro_rb.end()),
              1.5);
    const auto cnu_rb =
        sweepRatios(mainSweep(), "cnu", "rb", "qubit_only", kGate);
    EXPECT_GE(*std::max_element(cnu_rb.begin(), cnu_rb.end()), 1.5);
}

TEST(PaperClaims, EqmIsTheMostConsistentStrategy)
{
    // Section 7: EQM "almost never drops below the corresponding
    // qubit compilation success rate".
    int below = 0, total = 0;
    for (const auto &family :
         {"cuccaro", "cnu", "qram", "qaoa_cylinder", "qaoa_torus"}) {
        for (double r : sweepRatios(mainSweep(), family, "eqm",
                                    "qubit_only", kGate)) {
            ++total;
            if (r < 0.999)
                ++below;
        }
    }
    EXPECT_GT(total, 10);
    EXPECT_LE(below, total / 10); // "almost never"
}

TEST(PaperClaims, RbFindsNoCompressionsForBv)
{
    // Section 7: "For BV ... there are no cycles to examine in the
    // interaction graph, so no compressions are made."
    for (const auto &rec : filterSweep(mainSweep(), "bv", "rb"))
        EXPECT_EQ(rec.numCompressions, 0);
}

TEST(PaperClaims, GraphCircuitGainsAreModest)
{
    // Section 7: for graph-based circuits "no method clearly wins
    // ... up to 20% improvements" (modest compared with CNU/Cuccaro).
    // We check the medians are far below the structured-circuit ones.
    const double torus_med = median(sweepRatios(
        mainSweep(), "qaoa_torus", "eqm", "qubit_only", kGate));
    const double cuccaro_med = median(sweepRatios(
        mainSweep(), "cuccaro", "eqm", "qubit_only", kGate));
    EXPECT_LT(torus_med, cuccaro_med);
}

TEST(PaperClaims, CompressionCostsCoherenceAtWorstCaseT1)
{
    // Section 7.1: "at current T1 times decoherence error outweighs
    // the benefits" -- compressing strategies lose on coherence EPS.
    for (const auto &family : {"cuccaro", "qaoa_torus"}) {
        const auto ratios = sweepRatios(mainSweep(), family, "eqm",
                                        "qubit_only", kCoh);
        EXPECT_LT(median(ratios), 1.0) << family;
    }
}

TEST(PaperClaims, FqHasTheWorstDurations)
{
    // Section 7.1: "we significantly improve upon the time incurred
    // by FQ; all other compression strategies ... mitigate circuit
    // duration increases."
    for (const auto &family : {"cuccaro", "qaoa_torus"}) {
        const auto fq = filterSweep(mainSweep(), family, "fq");
        for (const auto &rec : fq) {
            for (const char *other : {"eqm", "rb", "awe", "pp"}) {
                const auto rs = filterSweep(mainSweep(), family, other);
                for (const auto &o : rs) {
                    if (o.requestedSize == rec.requestedSize) {
                        EXPECT_GT(rec.metrics.durationNs,
                                  o.metrics.durationNs)
                            << family << " size " << rec.requestedSize
                            << " vs " << other;
                    }
                }
            }
        }
    }
}

TEST(PaperClaims, CapacityDoubling)
{
    // Abstract: "increase the computational space available ... by up
    // to 2x" -- a 2n-qubit circuit compiles onto n units with EQM.
    SweepSpec spec;
    spec.families = {"cuccaro"};
    spec.sizes = {16};
    spec.strategies = {"eqm"};
    spec.device = [](const Circuit &c) {
        return Topology::grid((c.numQubits() + 1) / 2);
    };
    const auto records = runSweep(spec);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_GT(records[0].qubits, 0); // it fit
    EXPECT_EQ(records[0].numCompressions, records[0].qubits / 2);
}

TEST(PaperClaims, HigherQuquartT1MovesTotalEpsTowardCompression)
{
    // Figure 12's monotone trend: raising T1_ququart/T1_qubit can
    // only help compression relative to qubit-only.
    SweepSpec spec;
    spec.families = {"qram"};
    spec.sizes = {20};
    spec.strategies = {"qubit_only", "eqm"};
    double prev = 0.0;
    for (double ratio : {1.0 / 3.0, 0.6, 1.0}) {
        spec.library = GateLibrary();
        const double t1 = 10.0 * GateLibrary::kT1QubitNs;
        spec.library.setT1(t1, ratio * t1);
        const auto records = runSweep(spec);
        const auto rel = sweepRatios(
            records, "qram", "eqm", "qubit_only",
            [](const Metrics &m) { return m.totalEps; });
        ASSERT_EQ(rel.size(), 1u);
        EXPECT_GT(rel[0], prev);
        prev = rel[0];
    }
    EXPECT_GT(prev, 1.0); // crossover reached by ratio 1.0
}

} // namespace
} // namespace qompress
