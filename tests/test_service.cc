/**
 * @file
 * CompilerService contract tests.
 *
 * The load-bearing suite is the bit-identity matrix: a service compile
 * must equal a direct CompressionStrategy::compile of the same inputs
 * -- compiled gates, metrics, compressions, layouts -- for every
 * standard strategy on ring/grid/heavyHex65, across {cache on/off} x
 * {1, 2, 8 lanes} x {sync, async batch}. The rest covers the memo
 * cache (hit rates, LRU eviction, capacity knob, shared artifacts),
 * the context pool, registry-by-name requests, the structured
 * unknown-strategy error, and the strategy-registry round trip.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>

#include "circuits/bv.hh"
#include "circuits/registry.hh"
#include "common/error.hh"
#include "ir/passes.hh"
#include "ir/serialize.hh"
#include "service/artifact_store.hh"
#include "service/compiler_service.hh"
#include "strategies/strategy.hh"

namespace qompress {
namespace {

bool
samePhysGates(const CompiledCircuit &a, const CompiledCircuit &b)
{
    if (a.numGates() != b.numGates())
        return false;
    for (int i = 0; i < a.numGates(); ++i) {
        const PhysGate &x = a.gates()[i];
        const PhysGate &y = b.gates()[i];
        if (x.cls != y.cls || x.slots != y.slots ||
            x.logical != y.logical || x.logical2 != y.logical2 ||
            x.param != y.param || x.param2 != y.param2 ||
            x.isRouting != y.isRouting || x.sourceGate != y.sourceGate ||
            x.sourceGate2 != y.sourceGate2 ||
            x.start != y.start || x.duration != y.duration ||
            x.fidelity != y.fidelity)
            return false;
    }
    return true;
}

bool
sameLayout(const Layout &a, const Layout &b, int num_qubits)
{
    for (QubitId q = 0; q < num_qubits; ++q) {
        if (a.slotOf(q) != b.slotOf(q))
            return false;
    }
    return true;
}

::testing::AssertionResult
sameResult(const CompileResult &a, const CompileResult &b,
           int num_qubits)
{
    if (!samePhysGates(a.compiled, b.compiled))
        return ::testing::AssertionFailure() << "physical gates differ";
    if (a.compressions != b.compressions)
        return ::testing::AssertionFailure() << "compressions differ";
    if (a.metrics.gateEps != b.metrics.gateEps ||
        a.metrics.coherenceEps != b.metrics.coherenceEps ||
        a.metrics.totalEps != b.metrics.totalEps ||
        a.metrics.durationNs != b.metrics.durationNs ||
        a.metrics.numGates != b.metrics.numGates ||
        a.metrics.numRoutingGates != b.metrics.numRoutingGates ||
        a.metrics.numTwoUnitGates != b.metrics.numTwoUnitGates ||
        a.metrics.numEncodedUnits != b.metrics.numEncodedUnits ||
        a.metrics.classHistogram != b.metrics.classHistogram ||
        a.metrics.qubitTimeNs != b.metrics.qubitTimeNs ||
        a.metrics.ququartTimeNs != b.metrics.ququartTimeNs)
        return ::testing::AssertionFailure() << "metrics differ";
    if (!sameLayout(a.compiled.initialLayout(),
                    b.compiled.initialLayout(), num_qubits) ||
        !sameLayout(a.compiled.finalLayout(), b.compiled.finalLayout(),
                    num_qubits))
        return ::testing::AssertionFailure() << "layouts differ";
    return ::testing::AssertionSuccess();
}

std::vector<Topology>
testTopologies()
{
    std::vector<Topology> topos;
    topos.push_back(Topology::ring(8));
    topos.push_back(Topology::grid(8));
    topos.push_back(Topology::heavyHex65());
    return topos;
}

/**
 * The acceptance matrix: every standard strategy on ring/grid/
 * heavyHex65, service vs direct, across cache configuration, lane
 * count, and sync/async entry points.
 */
TEST(ServiceIdentity, MatchesDirectCompileEverywhere)
{
    const Circuit circuit = bernsteinVazirani(8);
    const GateLibrary lib;
    CompilerConfig cfg;
    cfg.lookaheadWeight = 0.5;

    const auto topos = testTopologies();
    const auto strategies = standardStrategies();

    // Direct references, one per (strategy, topology).
    std::vector<CompileResult> direct;
    std::vector<CompileRequest> reqs;
    for (const auto &strat : strategies) {
        for (const auto &topo : topos) {
            direct.push_back(strat->compile(circuit, topo, lib, cfg));
            reqs.push_back(CompileRequest::forCircuit(
                circuit, topo, strat->name(), cfg, lib));
        }
    }

    for (std::size_t cache_cap : {std::size_t(0), std::size_t(64)}) {
        for (int lanes : {1, 2, 8}) {
            ServiceOptions opts;
            opts.cacheCapacity = cache_cap;
            opts.threads = lanes;
            CompilerService service(opts);

            // Sync, one request at a time.
            for (std::size_t i = 0; i < reqs.size(); ++i) {
                const CompileArtifact art = service.compileSync(reqs[i]);
                EXPECT_TRUE(sameResult(*art, direct[i],
                                       circuit.numQubits()))
                    << "sync cache=" << cache_cap << " lanes=" << lanes
                    << " req=" << i;
            }

            // Async batch (same service: with the cache on these are
            // warm; with it off they recompile -- both must match).
            auto handles = service.submitBatch(reqs, lanes);
            ASSERT_EQ(handles.size(), reqs.size());
            for (std::size_t i = 0; i < handles.size(); ++i) {
                const CompileArtifact art = handles[i].get();
                EXPECT_TRUE(sameResult(*art, direct[i],
                                       circuit.numQubits()))
                    << "batch cache=" << cache_cap << " lanes=" << lanes
                    << " req=" << i;
            }
        }
    }
}

TEST(ServiceCache, WarmPassHitsEveryRequest)
{
    const Circuit circuit = bernsteinVazirani(6);
    const Topology topo = Topology::grid(6);
    const GateLibrary lib;

    CompilerService service;
    std::vector<CompileRequest> reqs;
    for (const auto &name : {"qubit_only", "eqm", "rb", "awe", "pp"})
        reqs.push_back(CompileRequest::forCircuit(circuit, topo, name,
                                                  CompilerConfig{}, lib));

    std::vector<CompileArtifact> first;
    for (const auto &r : reqs)
        first.push_back(service.compileSync(r));
    ServiceStats s1 = service.stats();
    EXPECT_EQ(s1.requests, reqs.size());
    EXPECT_EQ(s1.misses, reqs.size());
    EXPECT_EQ(s1.hits, 0u);
    EXPECT_EQ(s1.cacheSize, reqs.size());

    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const CompileArtifact again = service.compileSync(reqs[i]);
        // A hit returns the *same* shared immutable artifact.
        EXPECT_EQ(again.get(), first[i].get());
    }
    ServiceStats s2 = service.stats();
    EXPECT_EQ(s2.hits, reqs.size());
    EXPECT_EQ(s2.misses, reqs.size());
}

TEST(ServiceCache, LruEvictionAndCapacityKnob)
{
    const GateLibrary lib;
    const Topology topo = Topology::grid(6);

    ServiceOptions opts;
    opts.cacheCapacity = 2;
    CompilerService service(opts);

    auto req = [&](const char *strategy) {
        return CompileRequest::forCircuit(bernsteinVazirani(6), topo,
                                          strategy, CompilerConfig{},
                                          lib);
    };

    service.compileSync(req("eqm"));        // {eqm}
    service.compileSync(req("rb"));         // {rb, eqm}
    service.compileSync(req("awe"));        // {awe, rb} -- eqm evicted
    ServiceStats s = service.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.cacheSize, 2u);

    service.compileSync(req("eqm")); // recompiles (was evicted)
    EXPECT_EQ(service.stats().misses, 4u);

    service.setCacheCapacity(1);
    EXPECT_EQ(service.stats().cacheSize, 1u);
    EXPECT_GE(service.stats().evictions, 2u);

    // Capacity 0 disables memoization outright.
    service.setCacheCapacity(0);
    service.compileSync(req("eqm"));
    service.compileSync(req("eqm"));
    ServiceStats off = service.stats();
    EXPECT_EQ(off.cacheSize, 0u);
    EXPECT_EQ(off.hits, s.hits);
}

TEST(ServiceCache, DisabledCacheStillIdentical)
{
    const Circuit circuit = bernsteinVazirani(6);
    const Topology topo = Topology::grid(6);
    const GateLibrary lib;
    ServiceOptions opts;
    opts.cacheCapacity = 0;
    CompilerService service(opts);
    const auto req = CompileRequest::forCircuit(circuit, topo, "eqm",
                                                CompilerConfig{}, lib);
    const CompileArtifact a = service.compileSync(req);
    const CompileArtifact b = service.compileSync(req);
    EXPECT_NE(a.get(), b.get()); // distinct compiles...
    EXPECT_TRUE(sameResult(*a, *b, circuit.numQubits())); // ...same bits
    EXPECT_EQ(service.stats().hits, 0u);
    EXPECT_EQ(service.stats().misses, 2u);
}

TEST(ServiceContextPool, ReusesWarmContextsAcrossRequests)
{
    const Topology topo = Topology::grid(8);
    const GateLibrary lib;
    ServiceOptions opts;
    opts.cacheCapacity = 0; // force real compiles
    CompilerService service(opts);

    // Same topology/library/config pricing, different strategies and
    // circuits: one context serves all four compiles back to back.
    service.compileSync(CompileRequest::forCircuit(
        bernsteinVazirani(8), topo, "eqm", CompilerConfig{}, lib));
    service.compileSync(CompileRequest::forCircuit(
        bernsteinVazirani(8), topo, "rb", CompilerConfig{}, lib));
    service.compileSync(CompileRequest::forCircuit(
        bernsteinVazirani(7), topo, "eqm", CompilerConfig{}, lib));
    service.compileSync(CompileRequest::forFamily(
        "bv", 8, topo, "awe", CompilerConfig{}, lib));
    ServiceStats s = service.stats();
    EXPECT_EQ(s.contextsCreated, 1u);
    EXPECT_EQ(s.contextsReused, 3u);
    EXPECT_EQ(s.pooledContexts, 1u);

    // A different pricing configuration gets its own context.
    CompilerConfig nocache;
    nocache.useDistanceCache = false;
    service.compileSync(CompileRequest::forCircuit(
        bernsteinVazirani(8), topo, "eqm", nocache, lib));
    EXPECT_EQ(service.stats().contextsCreated, 2u);

    // clearCache drops pooled contexts too.
    service.clearCache();
    EXPECT_EQ(service.stats().pooledContexts, 0u);
}

TEST(ServiceContextPool, DisabledPoolBuildsColdContexts)
{
    const Topology topo = Topology::grid(6);
    ServiceOptions opts;
    opts.cacheCapacity = 0;
    opts.contextPoolCapacity = 0;
    CompilerService service(opts);
    const auto req = CompileRequest::forCircuit(
        bernsteinVazirani(6), topo, "eqm", CompilerConfig{}, {});
    service.compileSync(req);
    service.compileSync(req);
    ServiceStats s = service.stats();
    EXPECT_EQ(s.contextsCreated, 2u);
    EXPECT_EQ(s.contextsReused, 0u);
    EXPECT_EQ(s.pooledContexts, 0u);
}

TEST(ServiceRequests, FamilyAndExplicitCircuitShareArtifacts)
{
    const Topology topo = Topology::grid(8);
    CompilerService service;
    const CompileArtifact by_family = service.compileSync(
        CompileRequest::forFamily("bv", 8, topo, "eqm"));
    // The registry's "bv" family is bernsteinVazirani: an explicit
    // circuit with identical content is the same request.
    const CompileArtifact by_circuit =
        service.compileSync(CompileRequest::forCircuit(
            benchmarkFamily("bv").make(8), topo, "eqm"));
    EXPECT_EQ(by_family.get(), by_circuit.get());
    EXPECT_EQ(service.stats().hits, 1u);
}

TEST(ServiceRequests, DuplicateBatchSharesOneArtifact)
{
    const Topology topo = Topology::grid(6);
    ServiceOptions opts;
    opts.threads = 8;
    CompilerService service(opts);
    std::vector<CompileRequest> reqs(
        4, CompileRequest::forCircuit(bernsteinVazirani(6), topo, "eqm"));
    auto handles = service.submitBatch(std::move(reqs));
    std::set<const CompileResult *> distinct;
    for (const auto &h : handles)
        distinct.insert(h.get().get());
    EXPECT_EQ(distinct.size(), 1u);
    // Whatever the interleaving, every request is accounted for as
    // exactly one of miss (the compiling owner), coalesced (waited on
    // the owner), or hit (arrived after completion).
    ServiceStats s = service.stats();
    EXPECT_EQ(s.misses + s.coalesced + s.hits, 4u);
    EXPECT_EQ(s.misses, 1u);
}

TEST(ServiceRequests, HandlesReadyByServiceDestruction)
{
    // Tasks may land on the process-global pool, which outlives the
    // service; the destructor must drain them so a handle outliving
    // its service is always ready (never a dangling `this` capture).
    const Topology topo = Topology::grid(6);
    std::vector<CompileHandle> handles;
    {
        ServiceOptions opts;
        opts.threads = 0; // process default: the global pool if > 1
        CompilerService service(opts);
        std::vector<CompileRequest> reqs;
        for (const auto &name : {"eqm", "rb", "awe", "pp"})
            reqs.push_back(CompileRequest::forCircuit(
                bernsteinVazirani(6), topo, name));
        handles = service.submitBatch(std::move(reqs));
        // Service destroyed here with handles still un-waited.
    }
    for (const auto &h : handles) {
        ASSERT_TRUE(h.valid());
        EXPECT_NE(h.get(), nullptr);
    }
}

TEST(ServiceErrors, UnknownStrategyListsValidNames)
{
    try {
        makeStrategy("definitely_not_a_strategy");
        FAIL() << "makeStrategy should have thrown";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("definitely_not_a_strategy"),
                  std::string::npos);
        for (const auto &name : strategyNames())
            EXPECT_NE(msg.find(name), std::string::npos)
                << "error message should list '" << name << "'";
    }

    // The same structured error surfaces through both service entry
    // points.
    CompilerService service;
    const auto req = CompileRequest::forCircuit(
        bernsteinVazirani(4), Topology::grid(4), "nope");
    EXPECT_THROW(service.compileSync(req), FatalError);
    auto handle = service.submit(req);
    EXPECT_THROW(handle.get(), FatalError);
    // Failures are not cached.
    EXPECT_EQ(service.stats().cacheSize, 0u);
}

TEST(ServiceErrors, UnknownFamilyThrows)
{
    CompilerService service;
    EXPECT_THROW(service.compileSync(CompileRequest::forFamily(
                     "no_such_family", 8, Topology::grid(8), "eqm")),
                 FatalError);
    // Explicit-circuit requests resolve to their own circuit.
    const Circuit resolved =
        CompileRequest::forCircuit(bernsteinVazirani(4),
                                   Topology::grid(4), "eqm")
            .resolveCircuit();
    EXPECT_EQ(resolved.numQubits(), 4);
}

TEST(ServiceErrors, RequestWithoutCircuitOrFamilyThrows)
{
    CompileRequest req = CompileRequest::forFamily(
        "bv", 8, Topology::grid(8), "eqm");
    req.family.clear();
    EXPECT_THROW(req.resolveCircuit(), FatalError);
}

TEST(StrategyRegistry, RoundTripsEveryName)
{
    const auto &names = strategyNames();
    ASSERT_FALSE(names.empty());
    for (const auto &name : names) {
        const auto strategy = makeStrategy(name);
        ASSERT_NE(strategy, nullptr);
        EXPECT_EQ(strategy->name(), name);
    }
    // The standard evaluation set is a subset of the registry.
    for (const auto &strat : standardStrategies()) {
        EXPECT_NE(std::find(names.begin(), names.end(), strat->name()),
                  names.end());
    }
}

// ------------------------------------------------------------------
// Byte-size-aware LRU + disk tier
// ------------------------------------------------------------------

/** The extended accounting identity every stats snapshot must satisfy:
 *  each processed request is exactly one of the five outcomes. */
::testing::AssertionResult
partitionHolds(const ServiceStats &s)
{
    if (s.requests != s.hits + s.templateHits + s.diskHits + s.misses +
                          s.coalesced)
        return ::testing::AssertionFailure()
               << "requests=" << s.requests << " != hits=" << s.hits
               << " + templateHits=" << s.templateHits
               << " + diskHits=" << s.diskHits
               << " + misses=" << s.misses
               << " + coalesced=" << s.coalesced;
    return ::testing::AssertionSuccess();
}

/** Parameterized 6-qubit circuit; same structure for every angle, so
 *  every serialized artifact has the same byte size. */
Circuit
angleCircuit(double angle)
{
    Circuit c(6, "angles");
    for (QubitId q = 0; q < 6; ++q)
        c.h(q);
    c.rz(angle, 0);
    c.cx(0, 1);
    c.cx(2, 3);
    return c;
}

std::string
serviceStorePath(const char *tag)
{
    const std::string path =
        ::testing::TempDir() + "qompress_svc_" + tag + ".log";
    std::remove(path.c_str());
    return path;
}

TEST(ServiceByteBudget, EvictsInLruOrderUnderBytePressure)
{
    const Topology topo = Topology::grid(6);
    const GateLibrary lib;

    // Learn the (uniform) serialized artifact size first.
    CompilerService probe;
    const std::size_t unit =
        encodeCompileResult(*probe.compileSync(CompileRequest::forCircuit(
                                angleCircuit(0.1), topo, "eqm",
                                CompilerConfig{}, lib)))
            .size();
    ASSERT_GT(unit, 0u);

    ServiceOptions opts;
    opts.cacheBytesCapacity = 2 * unit; // room for exactly two
    opts.templateCacheCapacity = 0;     // isolate the memo tier
    CompilerService service(opts);
    auto req = [&](double angle) {
        return CompileRequest::forCircuit(angleCircuit(angle), topo,
                                          "eqm", CompilerConfig{}, lib);
    };

    service.compileSync(req(0.1)); // {a}
    service.compileSync(req(0.2)); // {b, a}
    EXPECT_EQ(service.stats().sizeEvictions, 0u);
    EXPECT_EQ(service.stats().bytesInUse, 2 * unit);

    service.compileSync(req(0.3)); // {c, b} -- a evicted (LRU)
    ServiceStats s = service.stats();
    EXPECT_EQ(s.sizeEvictions, 1u);
    EXPECT_EQ(s.evictions, 0u); // entry cap untouched: distinct counters
    EXPECT_EQ(s.cacheSize, 2u);
    EXPECT_LE(s.bytesInUse, s.bytesCapacity);

    service.compileSync(req(0.2)); // hit -- b now most recent
    EXPECT_EQ(service.stats().hits, 1u);
    service.compileSync(req(0.1)); // miss (was evicted); evicts c
    s = service.stats();
    EXPECT_EQ(s.sizeEvictions, 2u);
    EXPECT_EQ(s.misses, 4u);
    EXPECT_TRUE(partitionHolds(s));

    // An artifact larger than the whole budget is not retained at all.
    ServiceOptions tiny;
    tiny.cacheBytesCapacity = 1;
    tiny.templateCacheCapacity = 0;
    CompilerService cramped(tiny);
    cramped.compileSync(req(0.5));
    cramped.compileSync(req(0.5)); // recompiles: nothing stuck
    ServiceStats t = cramped.stats();
    EXPECT_EQ(t.misses, 2u);
    EXPECT_EQ(t.cacheSize, 0u);
    EXPECT_EQ(t.bytesInUse, 0u);
    EXPECT_EQ(t.sizeEvictions, 2u);
}

TEST(ServiceDiskTier, OffByDefaultLeavesBehaviorUnchanged)
{
    CompilerService service;
    const auto req = CompileRequest::forCircuit(
        bernsteinVazirani(6), Topology::grid(6), "eqm");
    service.compileSync(req);
    service.compileSync(req);
    const ServiceStats s = service.stats();
    EXPECT_EQ(s.diskHits, 0u);
    EXPECT_EQ(s.diskWrites, 0u);
    EXPECT_EQ(s.storeRecords, 0u);
    EXPECT_EQ(s.storeBytes, 0u);
    EXPECT_EQ(s.bytesInUse, 0u); // lazy charging: no encode happened
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_TRUE(partitionHolds(s));
}

TEST(ServiceDiskTier, RestartWarmServesCatalogWithZeroCompiles)
{
    const std::string path = serviceStorePath("restart");
    const GateLibrary lib;
    const CompilerConfig cfg;

    // A catalog of five distinct requests, parameterized ones included.
    std::vector<CompileRequest> catalog;
    catalog.push_back(CompileRequest::forCircuit(
        bernsteinVazirani(6), Topology::grid(6), "eqm", cfg, lib));
    catalog.push_back(CompileRequest::forCircuit(
        bernsteinVazirani(6), Topology::grid(6), "rb", cfg, lib));
    catalog.push_back(CompileRequest::forCircuit(
        bernsteinVazirani(7), Topology::ring(8), "eqm", cfg, lib));
    catalog.push_back(CompileRequest::forCircuit(
        angleCircuit(0.25), Topology::grid(6), "eqm", cfg, lib));
    catalog.push_back(CompileRequest::forFamily(
        "qaoa_random", 8, Topology::grid(8), "awe", cfg, lib));

    std::vector<CompileArtifact> first;
    {
        ServiceOptions opts;
        opts.storePath = path;
        CompilerService service(opts);
        for (const auto &req : catalog)
            first.push_back(service.compileSync(req));
        const ServiceStats s = service.stats();
        EXPECT_EQ(s.misses, catalog.size());
        EXPECT_EQ(s.diskWrites, catalog.size());
        EXPECT_EQ(s.storeRecords, catalog.size());
        EXPECT_GT(s.storeBytes, 0u);
        EXPECT_TRUE(partitionHolds(s));
    }

    // The warm-restart proof: a new service on the same store serves
    // the whole catalog without one full compile, bit-identically.
    ServiceOptions opts;
    opts.storePath = path;
    CompilerService restarted(opts);
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        const CompileArtifact art = restarted.compileSync(catalog[i]);
        const Circuit c = catalog[i].resolveCircuit();
        EXPECT_TRUE(sameResult(*art, *first[i], c.numQubits()))
            << "catalog entry " << i;
    }
    const ServiceStats s = restarted.stats();
    EXPECT_EQ(s.misses, 0u);           // zero full compiles...
    EXPECT_EQ(s.contextsCreated, 0u);  // ...so no context was built
    EXPECT_EQ(s.diskHits, catalog.size());
    EXPECT_EQ(s.diskWrites, 0u); // nothing new to persist
    EXPECT_TRUE(partitionHolds(s));

    // Second pass is served by the (now warm) memo tier, not the disk.
    for (const auto &req : catalog)
        restarted.compileSync(req);
    const ServiceStats s2 = restarted.stats();
    EXPECT_EQ(s2.hits, catalog.size());
    EXPECT_EQ(s2.diskHits, catalog.size());
    EXPECT_TRUE(partitionHolds(s2));
    std::remove(path.c_str());
}

TEST(ServiceDiskTier, RebindArtifactsArePersistedToo)
{
    const std::string path = serviceStorePath("rebind");
    const Topology topo = Topology::grid(6);
    const GateLibrary lib;

    std::vector<CompileArtifact> first;
    {
        ServiceOptions opts;
        opts.storePath = path;
        CompilerService service(opts);
        // angle 0.1 full-compiles and plants a template; angle 0.2 is
        // served by rebind -- and must STILL be written behind, or a
        // restarted service's warmth would depend on request order.
        first.push_back(service.compileSync(CompileRequest::forCircuit(
            angleCircuit(0.1), topo, "eqm", CompilerConfig{}, lib)));
        first.push_back(service.compileSync(CompileRequest::forCircuit(
            angleCircuit(0.2), topo, "eqm", CompilerConfig{}, lib)));
        const ServiceStats s = service.stats();
        EXPECT_EQ(s.templateHits, 1u);
        EXPECT_EQ(s.diskWrites, 2u);
        EXPECT_EQ(s.storeRecords, 2u);
        EXPECT_TRUE(partitionHolds(s));
    }

    // New service, REBOUND artifact requested first: disk hit, no
    // compile, bit-identical to the first boot's rebind.
    ServiceOptions opts;
    opts.storePath = path;
    CompilerService restarted(opts);
    const CompileArtifact again =
        restarted.compileSync(CompileRequest::forCircuit(
            angleCircuit(0.2), topo, "eqm", CompilerConfig{}, lib));
    EXPECT_TRUE(sameResult(*again, *first[1], 6));
    const ServiceStats s = restarted.stats();
    EXPECT_EQ(s.diskHits, 1u);
    EXPECT_EQ(s.misses, 0u);

    // The disk-loaded artifact planted a template: a THIRD angle is
    // served by rebind, not a full compile.
    restarted.compileSync(CompileRequest::forCircuit(
        angleCircuit(0.3), topo, "eqm", CompilerConfig{}, lib));
    const ServiceStats s2 = restarted.stats();
    EXPECT_EQ(s2.templateHits, 1u);
    EXPECT_EQ(s2.misses, 0u);
    EXPECT_TRUE(partitionHolds(s2));
    std::remove(path.c_str());
}

TEST(ServiceDiskTier, CorruptStoreRecordFallsBackToCompile)
{
    const std::string path = serviceStorePath("corrupt");
    const auto req = CompileRequest::forCircuit(
        bernsteinVazirani(6), Topology::grid(6), "eqm");
    CompileArtifact direct;
    {
        ServiceOptions opts;
        opts.storePath = path;
        CompilerService service(opts);
        direct = service.compileSync(req);
    }
    {
        // Corrupt the stored record's payload (the frame CRC guards
        // the log scan, so flip a byte AND fix nothing: recovery drops
        // the frame; the service must quietly recompile).
        std::FILE *f = std::fopen(path.c_str(), "r+");
        ASSERT_NE(f, nullptr);
        std::fseek(f, -9, SEEK_END);
        const int c = std::fgetc(f);
        std::fseek(f, -9, SEEK_END);
        std::fputc(c ^ 0xff, f);
        std::fclose(f);
    }
    ServiceOptions opts;
    opts.storePath = path;
    CompilerService service(opts);
    const CompileArtifact art = service.compileSync(req);
    EXPECT_TRUE(sameResult(*art, *direct, 6));
    const ServiceStats s = service.stats();
    EXPECT_EQ(s.diskHits, 0u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_TRUE(partitionHolds(s));
    std::remove(path.c_str());
}

TEST(ServiceFingerprints, ComponentsDistinguishContent)
{
    const Topology g8 = Topology::grid(8);
    EXPECT_EQ(topologyFingerprint(g8),
              topologyFingerprint(Topology::grid(8)));
    EXPECT_NE(topologyFingerprint(g8),
              topologyFingerprint(Topology::ring(8)));

    GateLibrary lib;
    const std::uint64_t base = libraryFingerprint(lib);
    EXPECT_EQ(base, libraryFingerprint(GateLibrary{}));
    lib.setT1(GateLibrary::kT1QubitNs, GateLibrary::kT1QuquartNs * 2);
    EXPECT_NE(base, libraryFingerprint(lib));

    CompilerConfig a, b;
    EXPECT_EQ(configFingerprint(a), configFingerprint(b));
    b.lookaheadWeight = 0.5;
    EXPECT_NE(configFingerprint(a), configFingerprint(b));
    // threads is lane count, not content: results are lane-invariant,
    // so it must not split the cache.
    CompilerConfig c;
    c.threads = 8;
    EXPECT_EQ(configFingerprint(a), configFingerprint(c));
}

} // namespace
} // namespace qompress
