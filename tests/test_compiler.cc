/**
 * @file
 * Tests for the compiler core: cost model, mapper, router, scheduler,
 * and the end-to-end pipeline invariants.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/arithmetic.hh"
#include "circuits/cnu.hh"
#include "common/error.hh"
#include "compiler/pipeline.hh"
#include "ir/passes.hh"

namespace qompress {
namespace {

GateLibrary kLib;

TEST(CostModel, GateSuccessMatchesFormula)
{
    const Topology topo = Topology::line(2);
    const ExpandedGraph xg(topo);
    const CostModel cost(xg, kLib);
    Layout layout(2, 2);
    layout.place(0, makeSlot(0, 0));
    layout.place(1, makeSlot(1, 0));

    const double dur = kLib.duration(PhysGateClass::CxBareBare);
    const double expect = 0.99 * std::exp(-dur / kLib.t1Qubit()) *
                          std::exp(-dur / kLib.t1Qubit());
    EXPECT_NEAR(cost.gateSuccess(PhysGateClass::CxBareBare,
                                 makeSlot(0, 0), makeSlot(1, 0), layout),
                expect, 1e-12);
}

TEST(CostModel, EncodedUnitsDecayFaster)
{
    const Topology topo = Topology::line(2);
    const ExpandedGraph xg(topo);
    const CostModel cost(xg, kLib);
    Layout bare(4, 2);
    bare.place(0, makeSlot(0, 0));
    bare.place(1, makeSlot(1, 0));
    Layout encoded = bare;
    encoded.place(2, makeSlot(0, 1));
    encoded.place(3, makeSlot(1, 1));
    // Same class on encoded units must be less likely to succeed.
    EXPECT_LT(cost.gateSuccess(PhysGateClass::SwapEnc00, makeSlot(0, 0),
                               makeSlot(1, 0), encoded),
              cost.gateSuccess(PhysGateClass::SwapBareBare,
                               makeSlot(0, 0), makeSlot(1, 0), bare));
}

TEST(CostModel, RoutingRefusesEmptySlots)
{
    const Topology topo = Topology::line(2);
    const ExpandedGraph xg(topo);
    const CostModel cost(xg, kLib);
    Layout layout(1, 2);
    layout.place(0, makeSlot(0, 0));
    EXPECT_EQ(cost.routingHopCost(makeSlot(0, 0), makeSlot(1, 0), layout),
              ShortestPaths::kInf);
}

TEST(CostModel, ThroughQuquartPenaltyApplies)
{
    const Topology topo = Topology::line(2);
    const ExpandedGraph xg(topo);
    const CostModel plain(xg, kLib, 1.0);
    const CostModel penal(xg, kLib, 2.0);
    Layout layout(3, 2);
    layout.place(0, makeSlot(0, 0));
    layout.place(1, makeSlot(1, 0));
    layout.place(2, makeSlot(1, 1)); // unit 1 encoded
    const double base =
        plain.routingHopCost(makeSlot(0, 0), makeSlot(1, 0), layout);
    const double with =
        penal.routingHopCost(makeSlot(0, 0), makeSlot(1, 0), layout);
    EXPECT_NEAR(with, 2.0 * base, 1e-12);
}

TEST(Mapper, QubitOnlyUsesDistinctUnits)
{
    const Circuit c = decomposeToNativeGates(cuccaroAdder(2)); // 6 qb
    const Topology topo = Topology::grid(6);
    const ExpandedGraph xg(topo);
    const CostModel cost(xg, kLib);
    const InteractionModel im(c);
    MapperOptions opts; // no pairs, no dynamic slot1
    const Layout layout = mapCircuit(c, im, cost, opts);
    EXPECT_EQ(layout.numMapped(), 6);
    EXPECT_EQ(layout.numEncodedUnits(), 0);
    for (QubitId q = 0; q < 6; ++q)
        EXPECT_EQ(slotPos(layout.slotOf(q)), 0);
}

TEST(Mapper, PairsShareAUnitWithCommittedOrder)
{
    const Circuit c = decomposeToNativeGates(cuccaroAdder(2));
    const Topology topo = Topology::grid(6);
    const ExpandedGraph xg(topo);
    const CostModel cost(xg, kLib);
    const InteractionModel im(c);
    MapperOptions opts;
    opts.pairs = {{1, 2}, {3, 4}};
    const Layout layout = mapCircuit(c, im, cost, opts);
    for (const auto &p : opts.pairs) {
        const SlotId sf = layout.slotOf(p.first);
        const SlotId ss = layout.slotOf(p.second);
        EXPECT_EQ(slotUnit(sf), slotUnit(ss));
        EXPECT_EQ(slotPos(sf), 0);
        EXPECT_EQ(slotPos(ss), 1);
    }
    EXPECT_EQ(layout.numEncodedUnits(), 2);
}

TEST(Mapper, CapacityEnforced)
{
    const Circuit c = decomposeToNativeGates(cuccaroAdder(3)); // 8 qb
    const Topology topo = Topology::line(4);
    const ExpandedGraph xg(topo);
    const CostModel cost(xg, kLib);
    const InteractionModel im(c);
    MapperOptions opts; // qubit-only: capacity 4 < 8
    EXPECT_THROW(mapCircuit(c, im, cost, opts), FatalError);
    opts.allowDynamicSlot1 = true; // capacity 8: fits
    const Layout layout = mapCircuit(c, im, cost, opts);
    EXPECT_EQ(layout.numMapped(), 8);
    EXPECT_EQ(layout.numEncodedUnits(), 4);
}

TEST(Mapper, RejectsOverlappingPairs)
{
    const Circuit c = decomposeToNativeGates(cuccaroAdder(2));
    const Topology topo = Topology::grid(6);
    const ExpandedGraph xg(topo);
    const CostModel cost(xg, kLib);
    const InteractionModel im(c);
    MapperOptions opts;
    opts.pairs = {{0, 1}, {1, 2}};
    EXPECT_THROW(mapCircuit(c, im, cost, opts), FatalError);
}

TEST(Router, AdjacentGateNeedsNoSwaps)
{
    Circuit c(2, "tiny");
    c.cx(0, 1);
    const CompileResult res = compileWithPairs(
        c, Topology::line(2), kLib, {}, false);
    EXPECT_EQ(res.compiled.numRoutingGates(), 0);
    ASSERT_EQ(res.compiled.numGates(), 1);
    EXPECT_EQ(res.compiled.gates()[0].cls, PhysGateClass::CxBareBare);
}

TEST(Router, DistantOperandsGetSwapChains)
{
    // Force qubits far apart on a line by an interaction pattern the
    // mapper cannot fully localize.
    Circuit c(5, "chain");
    c.cx(0, 1);
    c.cx(1, 2);
    c.cx(2, 3);
    c.cx(3, 4);
    c.cx(0, 4); // long-distance interaction
    const CompileResult res = compileWithPairs(
        c, Topology::line(5), kLib, {}, false);
    EXPECT_GT(res.compiled.numRoutingGates(), 0);
    // Validation runs inside compileWithPairs; re-run explicitly too.
    validateCompiled(res.compiled, Topology::line(5));
}

TEST(Router, InternalGatesForCompressedPair)
{
    Circuit c(2, "pair");
    c.cx(0, 1);
    c.cx(1, 0);
    const CompileResult res = compileWithPairs(
        c, Topology::line(2), kLib, {{0, 1}}, false);
    const auto hist = res.compiled.classHistogram();
    EXPECT_EQ(hist[static_cast<int>(PhysGateClass::CxInternal0)], 1);
    EXPECT_EQ(hist[static_cast<int>(PhysGateClass::CxInternal1)], 1);
}

TEST(Router, FusesParallelSingleQubitGatesOnOneQuquart)
{
    Circuit c(2, "fuse");
    c.h(0);
    c.h(1); // same ASAP layer, both qubits in one ququart
    const CompileResult res = compileWithPairs(
        c, Topology::line(2), kLib, {{0, 1}}, false);
    const auto hist = res.compiled.classHistogram();
    EXPECT_EQ(hist[static_cast<int>(PhysGateClass::SqEncBoth)], 1);
    EXPECT_EQ(hist[static_cast<int>(PhysGateClass::SqEnc0)], 0);
    EXPECT_EQ(hist[static_cast<int>(PhysGateClass::SqEnc1)], 0);
}

TEST(Router, SequentialSingleQubitGatesStaySeparate)
{
    Circuit c(2, "nofuse");
    c.h(0);
    c.x(0); // layer 2 on the same qubit: no partner to fuse with
    c.h(1);
    const CompileResult res = compileWithPairs(
        c, Topology::line(2), kLib, {{0, 1}}, false);
    const auto hist = res.compiled.classHistogram();
    // h0+h1 fuse (layer 1), x0 remains alone.
    EXPECT_EQ(hist[static_cast<int>(PhysGateClass::SqEncBoth)], 1);
    EXPECT_EQ(hist[static_cast<int>(PhysGateClass::SqEnc0)], 1);
}

TEST(Scheduler, GatesOnOneUnitSerialize)
{
    Circuit c(2, "serial");
    c.x(0);
    c.x(1);
    // Compressed: both 1q gates fuse... use sequential layers instead.
    Circuit c2(2, "serial2");
    c2.x(0);
    c2.cx(0, 1);
    const CompileResult res = compileWithPairs(
        c2, Topology::line(2), kLib, {{0, 1}}, false,
        CompilerConfig{.chargeInitialEnc = false});
    ASSERT_EQ(res.compiled.numGates(), 2);
    const auto &g = res.compiled.gates();
    EXPECT_GE(g[1].start, g[0].end());
}

TEST(Scheduler, IndependentUnitsOverlap)
{
    Circuit c(4, "parallel");
    c.cx(0, 1);
    c.cx(2, 3);
    const CompileResult res = compileWithPairs(
        c, Topology::line(4), kLib, {}, false);
    ASSERT_EQ(res.compiled.numGates(), 2);
    const auto &g = res.compiled.gates();
    EXPECT_DOUBLE_EQ(g[0].start, 0.0);
    EXPECT_DOUBLE_EQ(g[1].start, 0.0);
}

TEST(Scheduler, CriticalGatesCoverLongestPath)
{
    Circuit c(4, "crit");
    c.cx(0, 1);
    c.cx(1, 2);
    c.cx(2, 3);
    CompileResult res = compileWithPairs(
        c, Topology::line(4), kLib, {}, false);
    const auto crit = criticalGates(res.compiled);
    // The serialized CX chain is entirely critical.
    for (std::size_t i = 0; i < crit.size(); ++i)
        EXPECT_TRUE(crit[i]) << "gate " << i;
}

TEST(Pipeline, InitialEncChargedPerPair)
{
    Circuit c(4, "enc");
    c.cx(0, 1);
    c.cx(2, 3);
    CompilerConfig cfg;
    cfg.chargeInitialEnc = true;
    const CompileResult with_enc = compileWithPairs(
        c, Topology::grid(4), kLib, {{0, 1}, {2, 3}}, false, cfg);
    cfg.chargeInitialEnc = false;
    const CompileResult no_enc = compileWithPairs(
        c, Topology::grid(4), kLib, {{0, 1}, {2, 3}}, false, cfg);
    const auto hist = with_enc.compiled.classHistogram();
    EXPECT_EQ(hist[static_cast<int>(PhysGateClass::Encode)], 2);
    EXPECT_EQ(with_enc.compiled.numGates(), no_enc.compiled.numGates() + 2);
    EXPECT_LT(with_enc.metrics.gateEps, no_enc.metrics.gateEps);
}

TEST(Pipeline, ReportsActualCompressions)
{
    Circuit c(4, "rep");
    c.cx(0, 1);
    c.cx(2, 3);
    const CompileResult res = compileWithPairs(
        c, Topology::grid(4), kLib, {{2, 3}}, false);
    ASSERT_EQ(res.compressions.size(), 1u);
    EXPECT_EQ(res.compressions[0].first, 2);
    EXPECT_EQ(res.compressions[0].second, 3);
}

TEST(Pipeline, FinalLayoutMatchesReplay)
{
    const Circuit c = decomposeToNativeGates(generalizedToffoli(3));
    const Topology topo = Topology::grid(c.numQubits());
    const CompileResult res = compileWithPairs(c, topo, kLib, {}, false);
    const Layout replayed = replayFinalLayout(res.compiled);
    for (QubitId q = 0; q < c.numQubits(); ++q)
        EXPECT_EQ(replayed.slotOf(q),
                  res.compiled.finalLayout().slotOf(q));
}

TEST(Pipeline, NonNativeInputIsDecomposedAutomatically)
{
    Circuit c(3, "ccx");
    c.ccx(0, 1, 2);
    const CompileResult res = compileWithPairs(
        c, Topology::grid(3), kLib, {}, false);
    EXPECT_GE(res.compiled.numGates(), 15);
}

} // namespace
} // namespace qompress
