/**
 * @file
 * End-to-end functional verification: for a sweep of circuits,
 * topologies, and strategies, the compiled mixed-radix program must
 * implement exactly the logical circuit (statevector equivalence).
 */

#include <gtest/gtest.h>

#include "circuits/arithmetic.hh"
#include "circuits/cnu.hh"
#include "circuits/graphs.hh"
#include "circuits/qaoa.hh"
#include "common/rng.hh"
#include "sim/equivalence.hh"
#include "strategies/strategy.hh"

namespace qompress {
namespace {

const GateLibrary kLib;

void
expectEquivalent(const Circuit &logical, const Topology &topo,
                 const std::string &strategy_name)
{
    const auto strategy = makeStrategy(strategy_name);
    const CompileResult res = strategy->compile(logical, topo, kLib);
    const EquivalenceReport rep = checkEquivalence(logical, res.compiled);
    EXPECT_TRUE(rep.ok) << strategy_name << " on " << logical.name()
                        << " / " << topo.name() << ": " << rep.message;
}

/** Seeded random native circuit over n qubits. */
Circuit
randomCircuit(int n, int gates, std::uint64_t seed)
{
    Rng rng(seed);
    Circuit c(n, "random");
    for (int i = 0; i < gates; ++i) {
        const int kind = rng.nextInt(0, 5);
        const int a = rng.nextInt(0, n - 1);
        int b = rng.nextInt(0, n - 2);
        if (b >= a)
            ++b;
        switch (kind) {
          case 0:
            c.h(a);
            break;
          case 1:
            c.t(a);
            break;
          case 2:
            c.x(a);
            break;
          case 3:
            c.cx(a, b);
            break;
          case 4:
            c.cx(b, a);
            break;
          default:
            c.swap(a, b);
            break;
        }
    }
    return c;
}

TEST(Equivalence, BellPairAllStrategies)
{
    Circuit bell(2, "bell");
    bell.h(0);
    bell.cx(0, 1);
    for (const char *s : {"qubit_only", "eqm", "rb", "awe", "pp", "fq"})
        expectEquivalent(bell, Topology::grid(3), s);
}

TEST(Equivalence, GhzOnLine)
{
    Circuit ghz(4, "ghz");
    ghz.h(0);
    ghz.cx(0, 1);
    ghz.cx(1, 2);
    ghz.cx(2, 3);
    for (const char *s : {"qubit_only", "eqm", "rb", "awe", "pp"})
        expectEquivalent(ghz, Topology::line(4), s);
}

TEST(Equivalence, ToffoliDecomposition)
{
    Circuit c(3, "ccx");
    c.x(0);
    c.x(1);
    c.ccx(0, 1, 2);
    for (const char *s : {"qubit_only", "eqm"})
        expectEquivalent(c, Topology::grid(3), s);
}

TEST(Equivalence, CuccaroSmallAllStrategies)
{
    const Circuit adder = cuccaroAdder(2); // 6 qubits
    for (const char *s : {"qubit_only", "eqm", "rb", "awe", "pp"})
        expectEquivalent(adder, Topology::grid(6), s);
}

TEST(Equivalence, CnuSmall)
{
    const Circuit cnu = generalizedToffoli(3); // 5 qubits
    for (const char *s : {"qubit_only", "eqm", "rb", "awe", "pp"})
        expectEquivalent(cnu, Topology::grid(5), s);
}

TEST(Equivalence, QaoaTriangle)
{
    Graph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0);
    const Circuit qaoa = qaoaFromGraph(g);
    for (const char *s : {"qubit_only", "eqm", "rb", "awe", "pp", "fq"})
        expectEquivalent(qaoa, Topology::grid(4), s);
}

TEST(Equivalence, FullQuquartWithDecodePath)
{
    // 6 qubits on a 3x3 grid: FQ pairs them into 3 ququarts and must
    // decode/encode around external CX gates.
    Circuit c(6, "fq_path");
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    c.cx(2, 3);
    c.cx(3, 4);
    c.cx(4, 5);
    c.cx(0, 5);
    expectEquivalent(c, Topology::grid(9), "fq");
}

TEST(Equivalence, ExhaustiveStrategySmall)
{
    Circuit c(4, "ec_small");
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    c.cx(2, 3);
    c.cx(0, 3);
    expectEquivalent(c, Topology::grid(4), "ec");
    expectEquivalent(c, Topology::grid(4), "ec_unordered");
}

TEST(Equivalence, RingTopology)
{
    const Circuit adder = cuccaroAdder(2);
    for (const char *s : {"qubit_only", "eqm"})
        expectEquivalent(adder, Topology::ring(6), s);
}

struct SweepParam
{
    std::string strategy;
    std::uint64_t seed;
};

class RandomCircuitSweep
    : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(RandomCircuitSweep, CompiledMatchesLogical)
{
    const auto &[strategy, seed] = GetParam();
    const Circuit c = randomCircuit(6, 24, seed);
    expectEquivalent(c, Topology::grid(6), strategy);
}

std::vector<SweepParam>
sweepParams()
{
    std::vector<SweepParam> params;
    for (const char *s : {"qubit_only", "eqm", "rb", "awe", "pp", "fq"})
        for (std::uint64_t seed = 1; seed <= 4; ++seed)
            params.push_back({s, seed});
    return params;
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, RandomCircuitSweep, ::testing::ValuesIn(sweepParams()),
    [](const ::testing::TestParamInfo<SweepParam> &info) {
        return info.param.strategy + "_seed" +
               std::to_string(info.param.seed);
    });

} // namespace
} // namespace qompress
