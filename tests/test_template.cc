/**
 * @file
 * Template-compilation contract tests.
 *
 * The load-bearing suite is rebind-vs-full bit-identity: a
 * CompileResult produced by substituting new angles into a
 * CompiledTemplate must equal a from-scratch compile of the same
 * instance -- compiled gates, metrics, compressions, layouts -- for
 * every standard strategy on ring/grid/heavyHex65, at 1/2/8 lanes.
 * The rest covers the service's template tier (counters, the
 * fullCompile opt-out, LRU eviction, the unparameterized bypass),
 * fused SqEncBoth parameter pairs, and runSweep's angle-grid fast
 * path. Runs under TSan CI via the threads+service labels.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/bv.hh"
#include "circuits/qaoa.hh"
#include "circuits/registry.hh"
#include "common/error.hh"
#include "compiler/rebind.hh"
#include "eval/sweep.hh"
#include "ir/fingerprint.hh"
#include "ir/passes.hh"
#include "service/compiler_service.hh"
#include "strategies/strategy.hh"

namespace qompress {
namespace {

bool
samePhysGates(const CompiledCircuit &a, const CompiledCircuit &b)
{
    if (a.numGates() != b.numGates())
        return false;
    for (int i = 0; i < a.numGates(); ++i) {
        const PhysGate &x = a.gates()[i];
        const PhysGate &y = b.gates()[i];
        if (x.cls != y.cls || x.slots != y.slots ||
            x.logical != y.logical || x.logical2 != y.logical2 ||
            x.param != y.param || x.param2 != y.param2 ||
            x.isRouting != y.isRouting || x.sourceGate != y.sourceGate ||
            x.sourceGate2 != y.sourceGate2 ||
            x.start != y.start || x.duration != y.duration ||
            x.fidelity != y.fidelity)
            return false;
    }
    return true;
}

bool
sameLayout(const Layout &a, const Layout &b, int num_qubits)
{
    for (QubitId q = 0; q < num_qubits; ++q) {
        if (a.slotOf(q) != b.slotOf(q))
            return false;
    }
    return true;
}

::testing::AssertionResult
sameResult(const CompileResult &a, const CompileResult &b,
           int num_qubits)
{
    if (!samePhysGates(a.compiled, b.compiled))
        return ::testing::AssertionFailure() << "physical gates differ";
    if (a.compressions != b.compressions)
        return ::testing::AssertionFailure() << "compressions differ";
    if (a.metrics.gateEps != b.metrics.gateEps ||
        a.metrics.coherenceEps != b.metrics.coherenceEps ||
        a.metrics.totalEps != b.metrics.totalEps ||
        a.metrics.durationNs != b.metrics.durationNs ||
        a.metrics.numGates != b.metrics.numGates ||
        a.metrics.numRoutingGates != b.metrics.numRoutingGates ||
        a.metrics.numTwoUnitGates != b.metrics.numTwoUnitGates ||
        a.metrics.numEncodedUnits != b.metrics.numEncodedUnits ||
        a.metrics.classHistogram != b.metrics.classHistogram ||
        a.metrics.qubitTimeNs != b.metrics.qubitTimeNs ||
        a.metrics.ququartTimeNs != b.metrics.ququartTimeNs)
        return ::testing::AssertionFailure() << "metrics differ";
    if (!sameLayout(a.compiled.initialLayout(),
                    b.compiled.initialLayout(), num_qubits) ||
        !sameLayout(a.compiled.finalLayout(), b.compiled.finalLayout(),
                    num_qubits))
        return ::testing::AssertionFailure() << "layouts differ";
    return ::testing::AssertionSuccess();
}

std::vector<Topology>
testTopologies()
{
    std::vector<Topology> topos;
    topos.push_back(Topology::ring(8));
    topos.push_back(Topology::grid(8));
    topos.push_back(Topology::heavyHex65());
    return topos;
}

/** A parameterized 8-qubit workload with dense 1q-rotation layers
 *  (so encoding strategies fuse some pairs into SqEncBoth) and a CCX
 *  (so decomposition runs and the slot map must survive it). */
Circuit
angleFixture(const std::vector<double> &angles, const std::string &name)
{
    Circuit c(8, name);
    std::size_t k = 0;
    auto next = [&] { return angles[k++ % angles.size()]; };
    for (int q = 0; q < 8; ++q)
        c.h(q);
    for (int layer = 0; layer < 2; ++layer) {
        for (int q = 0; q + 1 < 8; q += 2) {
            c.cx(q, q + 1);
            c.rz(next(), q + 1);
            c.cx(q, q + 1);
        }
        for (int q = 1; q + 1 < 8; q += 2) {
            c.cx(q, q + 1);
            c.rz(next(), q + 1);
            c.cx(q, q + 1);
        }
        for (int q = 0; q < 8; ++q)
            c.rx(next(), q);
    }
    c.ccx(0, 1, 2);
    for (int q = 0; q < 8; ++q)
        c.ry(next(), q);
    return c;
}

std::vector<double>
anglesA()
{
    return {0.3, 1.1, 2.7, 0.05};
}

std::vector<double>
anglesB()
{
    return {1.9, 0.4, 3.05, 2.2, 0.7};
}

std::vector<double>
anglesC()
{
    return {0.01, 2.9};
}

// ------------------------------------------------------------------
// Direct rebind API (no service)
// ------------------------------------------------------------------

TEST(TemplateRebind, MatchesFullCompileForEveryStrategyAndTopology)
{
    const Circuit exemplar = angleFixture(anglesA(), "angles");
    const Circuit other = angleFixture(anglesB(), "angles");
    const GateLibrary lib;
    CompilerConfig cfg;
    cfg.lookaheadWeight = 0.5;

    ASSERT_EQ(structuralCircuitFingerprint(exemplar).value,
              structuralCircuitFingerprint(other).value);

    for (const auto &topo : testTopologies()) {
        for (const auto &strat : standardStrategies()) {
            CompileResult base;
            try {
                base = strat->compile(exemplar, topo, lib, cfg);
            } catch (const FatalError &) {
                continue; // strategy cannot fit this topology
            }
            const CompiledTemplate tpl = makeTemplate(
                std::make_shared<const CompileResult>(base), exemplar);
            EXPECT_GT(tpl.numParamSlots, 0u);
            EXPECT_EQ(tpl.numParamSlots,
                      structuralCircuitFingerprint(exemplar)
                          .paramGates.size());

            const CompileResult rebound =
                rebindTemplate(tpl, other, lib);
            const CompileResult direct =
                strat->compile(other, topo, lib, cfg);
            EXPECT_TRUE(
                sameResult(rebound, direct, other.numQubits()))
                << strat->name() << " on " << topo.name();
            EXPECT_EQ(rebound.compiled.name(), other.name());
        }
    }
}

TEST(TemplateRebind, PatchesFusedSqEncBothPairs)
{
    // On a ring, eqm pairs the heavily interacting neighbours; the
    // back-to-back rx layers on paired qubits fuse into SqEncBoth
    // physical gates whose param AND param2 must rebind.
    const Circuit exemplar = angleFixture(anglesA(), "angles");
    const Circuit other = angleFixture(anglesC(), "angles");
    const GateLibrary lib;
    const Topology topo = Topology::ring(8);
    const auto strat = makeStrategy("eqm");

    const CompileResult base = strat->compile(exemplar, topo, lib, {});
    int fused_params = 0;
    for (const auto &pg : base.compiled.gates()) {
        if (pg.cls == PhysGateClass::SqEncBoth &&
            gateHasParam(pg.logical) && gateHasParam(pg.logical2))
            ++fused_params;
    }
    ASSERT_GT(fused_params, 0)
        << "fixture no longer exercises fused parameterized pairs";

    const CompiledTemplate tpl = makeTemplate(
        std::make_shared<const CompileResult>(base), exemplar);
    const CompileResult rebound = rebindTemplate(tpl, other, lib);
    const CompileResult direct = strat->compile(other, topo, lib, {});
    EXPECT_TRUE(sameResult(rebound, direct, other.numQubits()));
}

TEST(TemplateRebind, SlotCountMismatchPanics)
{
    const Circuit exemplar = angleFixture(anglesA(), "angles");
    const GateLibrary lib;
    const auto strat = makeStrategy("qubit_only");
    const CompileResult base =
        strat->compile(exemplar, Topology::grid(8), lib, {});
    const CompiledTemplate tpl = makeTemplate(
        std::make_shared<const CompileResult>(base), exemplar);

    Circuit extra = exemplar;
    extra.rz(0.5, 0); // one more slot than the template
    EXPECT_THROW(rebindTemplate(tpl, extra, lib), PanicError);
}

// ------------------------------------------------------------------
// Service template tier
// ------------------------------------------------------------------

TEST(ServiceTemplateTier, ServesAngleVariantsByRebindEverywhere)
{
    const GateLibrary lib;
    CompilerConfig cfg;
    cfg.lookaheadWeight = 0.5;
    const Circuit a = angleFixture(anglesA(), "angles");
    const Circuit b = angleFixture(anglesB(), "angles");
    const Circuit c = angleFixture(anglesC(), "angles");

    for (const auto &topo : testTopologies()) {
        for (int lanes : {1, 2, 8}) {
            ServiceOptions opts;
            opts.threads = lanes;
            CompilerService service(opts);
            std::uint64_t expect_hits = 0;
            for (const auto &strat : standardStrategies()) {
                CompileResult direct_b, direct_c;
                try {
                    direct_b = strat->compile(b, topo, lib, cfg);
                    direct_c = strat->compile(c, topo, lib, cfg);
                } catch (const FatalError &) {
                    continue;
                }
                // Warm the template with one full compile, then let
                // the variants race across the batch lanes.
                service.compileSync(CompileRequest::forCircuit(
                    a, topo, strat->name(), cfg, lib));
                auto handles = service.submitBatch(
                    {CompileRequest::forCircuit(b, topo, strat->name(),
                                                cfg, lib),
                     CompileRequest::forCircuit(c, topo, strat->name(),
                                                cfg, lib)});
                expect_hits += 2;
                EXPECT_TRUE(sameResult(*handles[0].get(), direct_b,
                                       b.numQubits()))
                    << strat->name() << " on " << topo.name() << " at "
                    << lanes << " lanes";
                EXPECT_TRUE(sameResult(*handles[1].get(), direct_c,
                                       c.numQubits()))
                    << strat->name() << " on " << topo.name() << " at "
                    << lanes << " lanes";
            }
            const ServiceStats s = service.stats();
            EXPECT_EQ(s.templateHits, expect_hits);
            EXPECT_EQ(s.requests,
                      s.hits + s.templateHits + s.misses + s.coalesced);
        }
    }
}

TEST(ServiceTemplateTier, FullCompileKnobBypassesTheTier)
{
    const GateLibrary lib;
    const Topology topo = Topology::grid(8);
    const Circuit a = angleFixture(anglesA(), "angles");
    const Circuit b = angleFixture(anglesB(), "angles");

    CompilerService service;
    service.compileSync(
        CompileRequest::forCircuit(a, topo, "eqm", {}, lib));
    ASSERT_EQ(service.stats().templateSize, 1u);

    auto full = CompileRequest::forCircuit(b, topo, "eqm", {}, lib);
    full.fullCompile = true;
    const CompileArtifact via_full = service.compileSync(full);
    ServiceStats s = service.stats();
    EXPECT_EQ(s.templateHits, 0u);
    EXPECT_EQ(s.misses, 2u);

    // Without the knob the same request is an exact-tier hit now (the
    // full compile populated it); clear and re-run to see the rebind.
    service.clearCache();
    service.compileSync(
        CompileRequest::forCircuit(a, topo, "eqm", {}, lib));
    const CompileArtifact via_rebind = service.compileSync(
        CompileRequest::forCircuit(b, topo, "eqm", {}, lib));
    s = service.stats();
    EXPECT_EQ(s.templateHits, 1u);
    EXPECT_TRUE(sameResult(*via_full, *via_rebind, b.numQubits()));
}

TEST(ServiceTemplateTier, UnparameterizedCircuitsBypassTheTier)
{
    const GateLibrary lib;
    const Topology topo = Topology::grid(8);
    CompilerService service;
    service.compileSync(CompileRequest::forCircuit(
        bernsteinVazirani(8), topo, "eqm", {}, lib));
    const ServiceStats s = service.stats();
    EXPECT_EQ(s.templateSize, 0u);
    EXPECT_EQ(s.templateHits, 0u);
    EXPECT_EQ(s.templateMisses, 0u);
}

TEST(ServiceTemplateTier, DisabledTierCompilesEveryVariant)
{
    const GateLibrary lib;
    const Topology topo = Topology::grid(8);
    ServiceOptions opts;
    opts.templateCacheCapacity = 0;
    CompilerService service(opts);
    service.compileSync(CompileRequest::forCircuit(
        angleFixture(anglesA(), "angles"), topo, "eqm", {}, lib));
    service.compileSync(CompileRequest::forCircuit(
        angleFixture(anglesB(), "angles"), topo, "eqm", {}, lib));
    const ServiceStats s = service.stats();
    EXPECT_EQ(s.templateHits, 0u);
    EXPECT_EQ(s.templateSize, 0u);
    EXPECT_EQ(s.misses, 2u);
}

TEST(ServiceTemplateTier, LruEvictionDropsColdStructures)
{
    const GateLibrary lib;
    const Topology topo = Topology::grid(8);
    ServiceOptions opts;
    opts.templateCacheCapacity = 2;
    CompilerService service(opts);

    // Three structurally distinct parameterized circuits.
    auto structure = [](int variant) {
        Circuit c(8, "s" + std::to_string(variant));
        for (int q = 0; q < 8; ++q)
            c.rx(0.4, q);
        for (int g = 0; g <= variant; ++g)
            c.cx(g, g + 1);
        return c;
    };
    for (int v = 0; v < 3; ++v)
        service.compileSync(CompileRequest::forCircuit(
            structure(v), topo, "eqm", {}, lib));
    const ServiceStats s = service.stats();
    EXPECT_EQ(s.templateSize, 2u);
    EXPECT_EQ(s.templateCapacity, 2u);
    EXPECT_EQ(s.templateEvictions, 1u);

    // Structure 0 was evicted: an angle variant of it misses.
    Circuit variant = bindParams(structure(0), {1.9});
    service.compileSync(CompileRequest::forCircuit(
        variant, topo, "eqm", {}, lib));
    EXPECT_EQ(service.stats().templateHits, 0u);
    EXPECT_EQ(service.stats().templateMisses, 4u);
}

// ------------------------------------------------------------------
// runSweep angle grids
// ------------------------------------------------------------------

TEST(SweepParamGrid, AngleGridIsServedByTheTemplateTier)
{
    // A >= 20-point angle grid over one structure: the first cell
    // full-compiles, everything after is a rebind (serial lanes make
    // the count exact).
    SweepSpec spec;
    spec.families = {"qaoa_random"};
    spec.sizes = {8};
    spec.strategies = {"awe"};
    spec.threads = 1;
    for (int i = 0; i < 21; ++i)
        spec.paramGrid.push_back(
            {0.1 + 0.13 * i, 2.9 - 0.11 * i});
    ServiceStats stats;
    spec.serviceStats = &stats;

    const auto records = runSweep(spec);
    ASSERT_EQ(records.size(), 21u);
    for (int i = 0; i < 21; ++i) {
        EXPECT_EQ(records[i].paramRow, i);
        EXPECT_GT(records[i].qubits, 0);
        EXPECT_GT(records[i].metrics.totalEps, 0.0);
    }
    EXPECT_EQ(stats.requests, 21u);
    EXPECT_EQ(stats.templateHits, 20u);
    EXPECT_EQ(stats.misses, 1u);

    // The angles differ, so the schedule-independent metrics agree
    // across rows while the compiled parameters do not collide into
    // one memoized artifact (every row was a distinct request).
    EXPECT_EQ(stats.hits, 0u);
}

TEST(SweepParamGrid, ParallelGridMatchesSerialGrid)
{
    SweepSpec spec;
    spec.families = {"qaoa_random"};
    spec.sizes = {8};
    spec.strategies = {"awe", "eqm"};
    for (int i = 0; i < 6; ++i)
        spec.paramGrid.push_back({0.2 + 0.31 * i});

    SweepSpec serial = spec;
    serial.threads = 1;
    SweepSpec parallel = spec;
    parallel.threads = 4;
    ServiceStats pstats;
    parallel.serviceStats = &pstats;

    const auto a = runSweep(serial);
    const auto b = runSweep(parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].paramRow, b[i].paramRow);
        EXPECT_EQ(a[i].strategy, b[i].strategy);
        EXPECT_EQ(a[i].qubits, b[i].qubits);
        EXPECT_EQ(a[i].metrics.totalEps, b[i].metrics.totalEps);
        EXPECT_EQ(a[i].metrics.durationNs, b[i].metrics.durationNs);
        EXPECT_EQ(a[i].numCompressions, b[i].numCompressions);
    }
    // Racing lanes may full-compile a few extra rows before the
    // template lands, but the tier must carry the bulk of the grid.
    EXPECT_EQ(pstats.requests,
              pstats.hits + pstats.templateHits + pstats.misses +
                  pstats.coalesced);
    EXPECT_GE(pstats.templateHits, 1u);
}

TEST(SweepParamGrid, PortfolioRidesTheMemberTemplates)
{
    // The portfolio's internal service rebinding its members must not
    // change winners: records equal a portfolio sweep with templates
    // effectively cold (every row forced through full compiles by a
    // fresh spec without reuse -- rows are independent requests).
    SweepSpec spec;
    spec.families = {"qaoa_random"};
    spec.sizes = {8};
    spec.strategies = {"portfolio"};
    spec.threads = 1;
    for (int i = 0; i < 4; ++i)
        spec.paramGrid.push_back({0.15 + 0.4 * i, 1.7 - 0.2 * i});

    const auto rows = runSweep(spec);
    ASSERT_EQ(rows.size(), 4u);
    for (const auto &r : rows)
        EXPECT_GT(r.qubits, 0);

    // Reference: compile each bound instance directly via the
    // portfolio strategy (cold object per row: no template reuse).
    const auto &family = benchmarkFamily("qaoa_random");
    const Circuit base = family.make(8);
    for (int i = 0; i < 4; ++i) {
        const Circuit inst = bindParams(base, spec.paramGrid[i]);
        const auto strat = makeStrategy("portfolio");
        const CompileResult direct = strat->compile(
            inst, Topology::grid(inst.numQubits()), GateLibrary{}, {});
        EXPECT_EQ(rows[i].metrics.totalEps, direct.metrics.totalEps)
            << "row " << i;
        EXPECT_EQ(rows[i].metrics.durationNs,
                  direct.metrics.durationNs)
            << "row " << i;
    }
}

} // namespace
} // namespace qompress
