/**
 * @file
 * Differential tests for the hot-path overhaul: optimized statevector
 * kernels vs. the retained naive reference, allocation-free GRAPE
 * gradients vs. the naive implementation, the shared-series Van Loan
 * exponential vs. the augmented-matrix construction, and cached vs.
 * uncached routing distance fields.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "bench_util.hh"
#include "circuits/bv.hh"
#include "circuits/graphs.hh"
#include "circuits/qaoa.hh"
#include "common/rng.hh"
#include "compiler/pipeline.hh"
#include "ir/passes.hh"
#include "pulse/grape.hh"
#include "pulse/targets.hh"
#include "sim/statevector.hh"

namespace qompress {
namespace {

TEST(HotpathSim, OptimizedMatchesNaiveOnRandomGates)
{
    Rng rng(7);
    const std::vector<int> dims = {2, 4, 2, 4, 3, 2, 4};
    MixedRadixState fast = bench::randomState(dims, rng);
    MixedRadixState slow = fast;

    const std::vector<std::vector<int>> target_sets = {
        {0},    {1},    {4},          // k = 2, 4, 3
        {0, 2}, {1, 3}, {2, 1},       // k = 4, 16, 8 (incl. reversed)
        {5, 0}, {4, 6}, {0, 2, 5},    // non-adjacent and 3-unit
    };
    for (const auto &units : target_sets) {
        std::size_t k = 1;
        for (int u : units)
            k *= static_cast<std::size_t>(dims[u]);
        const GateMatrix u = bench::randomUnitary(k, rng);
        fast.applyUnitary(units, u);
        slow.applyUnitaryNaive(units, u);
    }
    EXPECT_LE(bench::maxAmpDiff(fast, slow), 1e-10);
    EXPECT_NEAR(fast.norm(), 1.0, 1e-9);
}

TEST(HotpathSim, FullStateGateHasEmptyComplement)
{
    // All units targeted: the complement odometer has zero digits, the
    // regression the old dead `rest.empty()` branch pretended to
    // handle.
    Rng rng(11);
    const std::vector<int> dims = {2, 3, 4};
    MixedRadixState fast = bench::randomState(dims, rng);
    MixedRadixState slow = fast;
    const GateMatrix u = bench::randomUnitary(24, rng);
    fast.applyUnitary({0, 1, 2}, u);
    slow.applyUnitaryNaive({0, 1, 2}, u);
    EXPECT_LE(bench::maxAmpDiff(fast, slow), 1e-10);
    EXPECT_NEAR(fast.norm(), 1.0, 1e-9);
}

TEST(HotpathSim, PermutationGatesUseSparsePath)
{
    // k = 8 permutation exercises the nonzero-compressed kernel.
    Rng rng(23);
    const std::vector<int> dims = {2, 2, 2, 4};
    MixedRadixState fast = bench::randomState(dims, rng);
    MixedRadixState slow = fast;
    GateMatrix perm(8);
    for (std::size_t i = 0; i < 8; ++i)
        perm[(i + 3) % 8][i] = 1.0;
    fast.applyUnitary({0, 1, 2}, perm);
    slow.applyUnitaryNaive({0, 1, 2}, perm);
    EXPECT_LE(bench::maxAmpDiff(fast, slow), 1e-12);
}

TEST(HotpathMatrix, InPlaceOpsMatchOperators)
{
    Rng rng(3);
    CMatrix a(5, 5), b(5, 5);
    for (int r = 0; r < 5; ++r) {
        for (int c = 0; c < 5; ++c) {
            a(r, c) = CMatrix::Scalar(rng.nextGaussian(),
                                      rng.nextGaussian());
            b(r, c) = CMatrix::Scalar(rng.nextGaussian(),
                                      rng.nextGaussian());
        }
    }
    CMatrix prod;
    mulInto(prod, a, b);
    const CMatrix expect = a * b;
    EXPECT_LE((prod - expect).norm(), 1e-12);

    CMatrix acc = a;
    addScaledInto(acc, CMatrix::Scalar(0.0, 2.0), b);
    const CMatrix expect2 = a + b * CMatrix::Scalar(0.0, 2.0);
    EXPECT_LE((acc - expect2).norm(), 1e-12);

    CMatrix dag;
    daggerInto(dag, a);
    EXPECT_LE((dag - a.dagger()).norm(), 1e-12);

    ExpmWorkspace ws;
    CMatrix e1;
    expmInto(e1, a * CMatrix::Scalar(0.1), ws);
    const CMatrix e2 = expm(a * CMatrix::Scalar(0.1));
    EXPECT_LE((e1 - e2).norm(), 1e-12);
}

TEST(HotpathMatrix, ExpmPadeMatchesTaylorAcrossRegimes)
{
    // expmInto is now the Padé-13 kernel (the direction-free family
    // exponential); the retained Taylor form is the reference. Cover
    // the no-squaring regime, the transition, and heavy squaring.
    Rng rng(23);
    for (double scale : {0.01, 0.4, 2.0, 8.0, 30.0}) {
        const int n = 7;
        CMatrix a(n, n);
        for (int r = 0; r < n; ++r) {
            for (int c = 0; c < n; ++c) {
                // Anti-Hermitian argument, as produced by -i dt H.
                const CMatrix::Scalar v(rng.nextGaussian(),
                                        rng.nextGaussian());
                a(r, c) += v * CMatrix::Scalar(0.0, scale / n);
                a(c, r) += std::conj(v) * CMatrix::Scalar(0.0, scale / n);
            }
        }
        ExpmWorkspace ws;
        CMatrix pade, taylor;
        expmInto(pade, a, ws);
        expmIntoTaylor(taylor, a, ws);
        const double denom = std::max(1.0, taylor.norm());
        EXPECT_LE((pade - taylor).norm() / denom, 1e-11)
            << "scale " << scale;
        // e^{anti-Hermitian} is unitary; both kernels must preserve it.
        EXPECT_TRUE(pade.isUnitary(1e-9)) << "scale " << scale;
        EXPECT_LE((expm(a) - pade).norm(), 1e-14); // expm rides expmInto
    }
}

TEST(HotpathMatrix, FamilyExponentialMatchesAugmented)
{
    Rng rng(17);
    const int n = 6;
    CMatrix a(n, n);
    std::vector<CMatrix> bs(2, CMatrix(n, n));
    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c) {
            // Anti-Hermitian-ish arguments as produced by -i dt H.
            a(r, c) = CMatrix::Scalar(0.0, rng.nextGaussian());
            for (auto &b : bs)
                b(r, c) = CMatrix::Scalar(0.0, 0.3 * rng.nextGaussian());
        }
    }

    ExpmFamilyWorkspace ws;
    CMatrix eA;
    std::vector<CMatrix> ds;
    expmFamilyInto(eA, ds, a, bs, ws);

    EXPECT_LE((eA - expm(a)).norm(), 1e-10);
    for (const auto &b : bs) {
        // Reference: the Van Loan augmented construction.
        CMatrix m(2 * n, 2 * n);
        for (int r = 0; r < n; ++r) {
            for (int c = 0; c < n; ++c) {
                m(r, c) = a(r, c);
                m(n + r, n + c) = a(r, c);
                m(r, n + c) = b(r, c);
            }
        }
        const CMatrix e = expm(m);
        const std::size_t k = static_cast<std::size_t>(&b - bs.data());
        double worst = 0.0;
        for (int r = 0; r < n; ++r)
            for (int c = 0; c < n; ++c)
                worst = std::max(worst,
                                 std::abs(ds[k](r, c) - e(r, n + c)));
        EXPECT_LE(worst, 1e-10);
    }
}

TEST(HotpathMatrix, LuSolverInvertsRandomSystems)
{
    Rng rng(23);
    for (int n : {1, 2, 5, 9}) {
        CMatrix a(n, n);
        for (int r = 0; r < n; ++r)
            for (int c = 0; c < n; ++c)
                a(r, c) = CMatrix::Scalar(rng.nextGaussian(),
                                          rng.nextGaussian());
        CMatrix b(n, n + 2); // non-square right-hand side too
        for (int r = 0; r < n; ++r)
            for (int c = 0; c < n + 2; ++c)
                b(r, c) = CMatrix::Scalar(rng.nextGaussian(),
                                          rng.nextGaussian());
        LuSolver lu;
        lu.factor(a);
        CMatrix x = b;
        lu.solveInPlace(x);
        const CMatrix residual = a * x - b;
        EXPECT_LE(residual.norm(), 1e-10 * (1.0 + b.norm())) << n;
    }
}

TEST(HotpathMatrix, PadeFamilyMatchesTaylorFamilyTo1e12)
{
    // The production Padé-13 kernel vs the retained Taylor reference
    // on anti-Hermitian arguments spanning several scaling regimes
    // (norms below and well above theta_13).
    Rng rng(29);
    const int n = 7;
    for (double mag : {0.05, 1.0, 8.0, 40.0}) {
        CMatrix a(n, n);
        std::vector<CMatrix> bs(3, CMatrix(n, n));
        for (int r = 0; r < n; ++r) {
            for (int c = 0; c < n; ++c) {
                a(r, c) = CMatrix::Scalar(0.0, mag * rng.nextGaussian());
                for (auto &b : bs)
                    b(r, c) = CMatrix::Scalar(
                        0.0, 0.2 * mag * rng.nextGaussian());
            }
        }
        ExpmFamilyWorkspace ws;
        CMatrix eA, eA_ref;
        std::vector<CMatrix> ds, ds_ref;
        expmFamilyInto(eA, ds, a, bs, ws);
        expmFamilyIntoTaylor(eA_ref, ds_ref, a, bs, ws);
        // Tolerance scales with the result magnitude: the derivative
        // blocks grow with |B| while e^A stays unitary-bounded.
        EXPECT_LE((eA - eA_ref).norm(), 1e-12 * (1.0 + eA_ref.norm()))
            << "mag " << mag;
        ASSERT_EQ(ds.size(), ds_ref.size());
        for (std::size_t k = 0; k < ds.size(); ++k)
            EXPECT_LE((ds[k] - ds_ref[k]).norm(),
                      1e-12 * (1.0 + ds_ref[k].norm()))
                << "mag " << mag << " direction " << k;
    }
}

TEST(HotpathGrape, OptimizedGradientMatchesNaive)
{
    std::vector<int> dims;
    const CMatrix target = namedTarget("CX0", dims);
    const TransmonSystem system(dims, 1);
    GrapeOptimizer grape(system, target, 40.0, 8);

    Rng rng(5);
    std::vector<std::vector<double>> controls(
        grape.numControls(),
        std::vector<double>(grape.segments(), 0.0));
    const double amp = 0.3 * system.maxAmplitude();
    for (auto &row : controls)
        for (auto &v : row)
            v = rng.nextDouble(-amp, amp);

    GrapeWorkspace ws;
    std::vector<std::vector<double>> grad, grad_naive;
    double f1 = 0, l1 = 0, f2 = 0, l2 = 0;
    const double j1 =
        grape.objectiveAndGradient(controls, grad, f1, l1, ws);
    const double j2 =
        grape.objectiveAndGradientNaive(controls, grad_naive, f2, l2);

    EXPECT_NEAR(j1, j2, 1e-10);
    EXPECT_NEAR(f1, f2, 1e-10);
    EXPECT_NEAR(l1, l2, 1e-10);
    ASSERT_EQ(grad.size(), grad_naive.size());
    for (std::size_t k = 0; k < grad.size(); ++k) {
        ASSERT_EQ(grad[k].size(), grad_naive[k].size());
        for (std::size_t j = 0; j < grad[k].size(); ++j)
            EXPECT_NEAR(grad[k][j], grad_naive[k][j], 1e-10)
                << "control " << k << " segment " << j;
    }

    // Workspace reuse across different control values stays exact.
    for (auto &row : controls)
        for (auto &v : row)
            v = rng.nextDouble(-amp, amp);
    grape.objectiveAndGradient(controls, grad, f1, l1, ws);
    grape.objectiveAndGradientNaive(controls, grad_naive, f2, l2);
    for (std::size_t k = 0; k < grad.size(); ++k)
        for (std::size_t j = 0; j < grad[k].size(); ++j)
            EXPECT_NEAR(grad[k][j], grad_naive[k][j], 1e-10);
}

TEST(HotpathLayout, CostVersionTracksOccupancyOnly)
{
    Layout layout(4, 4);
    const auto v0 = layout.costVersion();
    layout.place(0, makeSlot(0, 0));
    layout.place(1, makeSlot(1, 0));
    EXPECT_GT(layout.costVersion(), v0);

    // Occupied <-> occupied exchange: costs invariant, no bump.
    const auto v1 = layout.costVersion();
    layout.swapSlots(makeSlot(0, 0), makeSlot(1, 0));
    EXPECT_EQ(layout.costVersion(), v1);

    // Empty <-> empty: nothing moves, no bump.
    layout.swapSlots(makeSlot(2, 0), makeSlot(3, 0));
    EXPECT_EQ(layout.costVersion(), v1);

    // Occupied <-> empty changes occupancy: bump.
    layout.swapSlots(makeSlot(0, 0), makeSlot(2, 0));
    EXPECT_GT(layout.costVersion(), v1);

    const auto v2 = layout.costVersion();
    layout.remove(1);
    EXPECT_GT(layout.costVersion(), v2);
}

TEST(HotpathCache, FieldsMatchDirectComputation)
{
    const Topology topo = Topology::ring(6);
    const GateLibrary lib;
    const ExpandedGraph xg(topo);
    const CostModel cost(xg, lib);

    Layout layout(6, 6);
    for (QubitId q = 0; q < 6; ++q)
        layout.place(q, makeSlot(q, 0));

    DistanceFieldCache cache(cost);
    for (SlotId s = 0; s < 4; ++s) {
        const auto direct = cost.routingDistances(s, layout);
        const auto &cached = cache.routing(s, layout);
        EXPECT_EQ(direct.dist, cached.dist) << "source " << s;
        EXPECT_EQ(direct.parent, cached.parent);
    }
    EXPECT_EQ(cache.misses(), 4u);

    // Routing-style swap: costs unchanged, fields served from cache.
    layout.swapSlots(makeSlot(0, 0), makeSlot(1, 0));
    cache.routing(0, layout);
    EXPECT_EQ(cache.hits(), 1u);

    // Occupancy change invalidates.
    layout.swapSlots(makeSlot(0, 0), makeSlot(0, 1));
    const auto direct = cost.routingDistances(0, layout);
    const auto &recomputed = cache.routing(0, layout);
    EXPECT_EQ(cache.misses(), 5u);
    EXPECT_EQ(direct.dist, recomputed.dist);
}

TEST(HotpathCache, PartialInvalidationRecomputesExactlyOnDependedChanges)
{
    // Interleave layout mutations with distance queries and count
    // recomputes (misses) via the cache counters: a field must be
    // recomputed exactly when a unit state it depends on changed.
    const Topology topo = Topology::ring(8);
    const GateLibrary lib;
    const ExpandedGraph xg(topo);
    const CostModel cost(xg, lib);

    Layout layout(8, 8);
    layout.place(0, makeSlot(0, 0));
    layout.place(1, makeSlot(1, 0));
    layout.place(2, makeSlot(2, 0));

    DistanceFieldCache cache(cost);
    const SlotId src = makeSlot(0, 0);

    // Cold: one recompute.
    cache.mapping(src, layout);
    EXPECT_EQ(cache.misses(), 1u);

    // Placement on an empty unit flips no encoded bit: the mapping
    // field revalidates instead of recomputing.
    layout.place(3, makeSlot(3, 0));
    cache.mapping(src, layout);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.revalidations(), 1u);
    // And the follow-up query takes the O(1) stamped path.
    cache.mapping(src, layout);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.revalidations(), 1u);

    // Completing a pair flips unit 1's encoded bit: recompute, and
    // the recomputed field must match a direct computation.
    layout.place(4, makeSlot(1, 1));
    const auto direct = cost.mappingDistances(src, layout);
    const auto &refreshed = cache.mapping(src, layout);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(direct.dist, refreshed.dist);

    // Routing fields depend on per-slot occupancy, so the same
    // empty-unit placement that mapping shrugged off is a routing
    // recompute...
    cache.routing(src, layout);
    EXPECT_EQ(cache.misses(), 3u);
    layout.place(5, makeSlot(5, 0));
    cache.mapping(src, layout); // encoded bits unchanged: revalidates
    EXPECT_EQ(cache.misses(), 3u);
    cache.routing(src, layout); // occupancy changed: recomputes
    EXPECT_EQ(cache.misses(), 4u);

    // ...while occupied <-> occupied routing SWAPs invalidate nothing.
    layout.swapSlots(makeSlot(1, 0), makeSlot(2, 0));
    const auto hits_before = cache.hits();
    cache.routing(src, layout);
    cache.mapping(src, layout);
    EXPECT_EQ(cache.misses(), 4u);
    EXPECT_EQ(cache.hits(), hits_before + 2);

    // Intra-unit occupied <-> empty swap keeps the unit's occupancy
    // count (mapping-irrelevant) but moves which slot is occupied
    // (routing-relevant).
    layout.swapSlots(makeSlot(5, 0), makeSlot(5, 1));
    cache.mapping(src, layout);
    EXPECT_EQ(cache.misses(), 4u);
    cache.routing(src, layout);
    EXPECT_EQ(cache.misses(), 5u);

    // The recordMutation hook models an external cost perturbation
    // (e.g. a calibration change) that occupancy signatures cannot
    // see: the perturbation nonce makes both field families recompute
    // even though no qubit moved.
    layout.recordMutation(makeSlot(4, 0));
    cache.mapping(src, layout);
    cache.routing(src, layout);
    EXPECT_EQ(cache.misses(), 7u);
    // ...and once restamped, lookups are hits again.
    const auto hits_after = cache.hits();
    cache.mapping(src, layout);
    EXPECT_EQ(cache.hits(), hits_after + 1);
    EXPECT_EQ(cache.misses(), 7u);
}

TEST(HotpathCache, SurvivesDistinctLayoutInstances)
{
    // Progressive pairing and the exhaustive search remap from scratch
    // each round; a field cached against one Layout instance must be
    // reused by a different instance with the same relevant state and
    // never reused when the state differs.
    const Topology topo = Topology::ring(6);
    const GateLibrary lib;
    const ExpandedGraph xg(topo);
    const CostModel cost(xg, lib);
    DistanceFieldCache cache(cost);

    Layout a(6, 6);
    a.place(0, makeSlot(0, 0));
    a.place(1, makeSlot(0, 1)); // unit 0 encoded
    a.place(2, makeSlot(2, 0));
    cache.mapping(0, a);
    EXPECT_EQ(cache.misses(), 1u);

    // Same encoded bits, different instance (and different placement
    // history): revalidation hit.
    Layout b(6, 6);
    b.place(3, makeSlot(0, 0));
    b.place(4, makeSlot(0, 1));
    b.place(5, makeSlot(4, 0)); // occupancy differs; encoding agrees
    cache.mapping(0, b);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.revalidations(), 1u);

    // Same instance id trap: a copy diverging from its original must
    // not serve the original's stamp. The copy gets a fresh id, so
    // the changed encoding is detected.
    Layout c = b;
    c.remove(4); // unit 0 no longer encoded
    const auto direct = cost.mappingDistances(0, c);
    const auto &recomputed = cache.mapping(0, c);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(direct.dist, recomputed.dist);
}

/** Route one circuit twice, cache on/off, and demand identical output. */
void
expectSameRouting(const Circuit &circuit, const Topology &topo,
                  double lookahead)
{
    const Circuit native = decomposeToNativeGates(circuit);
    const GateLibrary lib;
    const ExpandedGraph xg(topo);
    const CostModel cost(xg, lib);
    const InteractionModel im(native);
    const Layout initial = mapCircuit(native, im, cost, {});

    auto route = [&](bool use_cache) {
        RouterOptions ropts;
        ropts.lookaheadWeight = lookahead;
        ropts.useDistanceCache = use_cache;
        Layout layout = initial;
        CompiledCircuit out(layout, "diff");
        routeCircuit(native, layout, cost, out, ropts);
        return out;
    };
    const CompiledCircuit with_cache = route(true);
    const CompiledCircuit without = route(false);

    ASSERT_EQ(with_cache.numGates(), without.numGates());
    for (int i = 0; i < with_cache.numGates(); ++i) {
        const PhysGate &x = with_cache.gates()[i];
        const PhysGate &y = without.gates()[i];
        EXPECT_EQ(x.cls, y.cls) << "gate " << i;
        EXPECT_EQ(x.slots, y.slots) << "gate " << i;
        EXPECT_EQ(x.logical, y.logical) << "gate " << i;
        EXPECT_EQ(x.isRouting, y.isRouting) << "gate " << i;
    }
    for (QubitId q = 0; q < initial.numQubits(); ++q) {
        EXPECT_EQ(with_cache.finalLayout().slotOf(q),
                  without.finalLayout().slotOf(q));
    }
}

TEST(HotpathRouter, CachedRoutingIdenticalOnRing)
{
    expectSameRouting(bernsteinVazirani(8), Topology::ring(8), 0.0);
    expectSameRouting(bernsteinVazirani(8), Topology::ring(8), 0.5);
    expectSameRouting(qaoaFromGraph(randomGraph(8, 0.4)), Topology::ring(8), 0.5);
}

TEST(HotpathRouter, CachedRoutingIdenticalOnGrid)
{
    expectSameRouting(bernsteinVazirani(9), Topology::grid(9), 0.0);
    expectSameRouting(bernsteinVazirani(9), Topology::grid(9), 0.5);
    expectSameRouting(qaoaFromGraph(randomGraph(9, 0.4)), Topology::grid(9), 0.5);
}

} // namespace
} // namespace qompress
