/**
 * @file
 * Tests for the optimization passes (rotation merging, SWAP
 * decomposition, fixpoint cleanup) and the portfolio strategy.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/arithmetic.hh"
#include "ir/passes.hh"
#include "sim/equivalence.hh"
#include "strategies/portfolio.hh"
#include "strategies/strategy.hh"

namespace qompress {
namespace {

TEST(MergeRotations, CombinesAdjacentSameAxis)
{
    Circuit c(1, "rz");
    c.rz(0.3, 0);
    c.rz(0.4, 0);
    const Circuit out = mergeRotations(c);
    ASSERT_EQ(out.numGates(), 1);
    EXPECT_NEAR(out.gates()[0].param, 0.7, 1e-12);
}

TEST(MergeRotations, DropsIdentityRotations)
{
    Circuit c(1, "zero");
    c.rz(1.0, 0);
    c.rz(-1.0, 0);
    EXPECT_EQ(mergeRotations(c).numGates(), 0);
    Circuit d(1, "twopi");
    d.rx(M_PI, 0);
    d.rx(M_PI, 0);
    EXPECT_EQ(mergeRotations(d).numGates(), 0);
}

TEST(MergeRotations, DifferentAxesStaySeparate)
{
    Circuit c(1, "axes");
    c.rz(0.3, 0);
    c.rx(0.4, 0);
    EXPECT_EQ(mergeRotations(c).numGates(), 2);
}

TEST(MergeRotations, BarrierGateFlushes)
{
    Circuit c(2, "flush");
    c.rz(0.3, 0);
    c.cx(0, 1);
    c.rz(0.4, 0);
    const Circuit out = mergeRotations(c);
    EXPECT_EQ(out.numGates(), 3);
}

TEST(MergeRotations, PreservesOrderAcrossQubits)
{
    Circuit c(2, "multi");
    c.rz(0.1, 0);
    c.rz(0.2, 1);
    c.rz(0.3, 0);
    const Circuit out = mergeRotations(c);
    EXPECT_EQ(out.numGates(), 2);
    double total = 0.0;
    for (const auto &g : out.gates())
        total += g.param;
    EXPECT_NEAR(total, 0.6, 1e-12);
}

TEST(DecomposeSwaps, ThreeCxPerSwap)
{
    Circuit c(2, "swap");
    c.swap(0, 1);
    const Circuit out = decomposeSwaps(c);
    EXPECT_EQ(out.numGates(), 3);
    for (const auto &g : out.gates())
        EXPECT_EQ(g.type, GateType::CX);
}

TEST(DecomposeSwaps, SemanticallyEquivalent)
{
    Circuit c(3, "swap_equiv");
    c.h(0);
    c.t(1);
    c.swap(0, 1);
    c.cx(1, 2);
    const Circuit lowered = decomposeSwaps(c);
    // Compile the lowered circuit; verify against the ORIGINAL.
    const GateLibrary lib;
    const auto res = makeStrategy("qubit_only")
                         ->compile(lowered, Topology::line(3), lib);
    // The lowered circuit must implement the original's unitary.
    const auto rep = checkEquivalence(c, res.compiled);
    EXPECT_TRUE(rep.ok) << rep.message;
}

TEST(OptimizeCircuit, ReachesFixpoint)
{
    Circuit c(2, "opt");
    c.h(0);
    c.h(0);      // cancels
    c.rz(0.5, 0);
    c.rz(-0.5, 0); // merges to zero
    c.cx(0, 1);
    c.cx(0, 1);  // cancels
    c.x(1);
    const Circuit out = optimizeCircuit(c);
    ASSERT_EQ(out.numGates(), 1);
    EXPECT_EQ(out.gates()[0].type, GateType::X);
}

TEST(OptimizeCircuit, PreservesSemantics)
{
    Circuit c(3, "opt_equiv");
    c.h(0);
    c.rz(0.4, 0);
    c.rz(0.8, 0);
    c.cx(0, 1);
    c.cx(0, 1);
    c.h(2);
    c.cx(1, 2);
    const Circuit opt = optimizeCircuit(c);
    EXPECT_LT(opt.numGates(), c.numGates());
    const GateLibrary lib;
    const auto res = makeStrategy("qubit_only")
                         ->compile(opt, Topology::line(3), lib);
    EXPECT_TRUE(checkEquivalence(c, res.compiled).ok);
}

TEST(Portfolio, PicksTheBestMember)
{
    const Circuit c = cuccaroAdder(5); // 12 qubits
    const Topology topo = Topology::grid(12);
    const GateLibrary lib;
    PortfolioStrategy portfolio;
    const auto best = portfolio.compile(c, topo, lib);
    for (const char *s : {"qubit_only", "eqm", "rb", "awe", "pp"}) {
        const auto res = makeStrategy(s)->compile(c, topo, lib);
        EXPECT_GE(best.metrics.totalEps + 1e-12, res.metrics.totalEps)
            << s;
    }
    EXPECT_FALSE(portfolio.lastWinner().empty());
}

TEST(Portfolio, SkipsMembersThatDoNotFit)
{
    // 8 qubits on 4 units: qubit_only cannot fit but the portfolio
    // still succeeds through the compressing members.
    Circuit c(8, "tight");
    for (int q = 0; q + 1 < 8; ++q)
        c.cx(q, q + 1);
    PortfolioStrategy portfolio;
    const GateLibrary lib;
    const auto res = portfolio.compile(c, Topology::grid(4), lib);
    EXPECT_GT(res.metrics.totalEps, 0.0);
    EXPECT_NE(portfolio.lastWinner(), "qubit_only");
}

TEST(Portfolio, AvailableThroughRegistry)
{
    EXPECT_EQ(makeStrategy("portfolio")->name(), "portfolio");
}

} // namespace
} // namespace qompress
