/**
 * @file
 * Tests for topologies, the expanded graph, and the gate library.
 */

#include <gtest/gtest.h>

#include "arch/expanded_graph.hh"
#include "arch/gate_library.hh"
#include "arch/topology.hh"
#include "common/error.hh"
#include "graph/algorithms.hh"

namespace qompress {
namespace {

TEST(Topology, GridSizing)
{
    const Topology t = Topology::grid(12); // ceil(sqrt(12)) = 4 cols
    EXPECT_GE(t.numUnits(), 12);
    EXPECT_EQ(t.numUnits(), 12); // 3 rows x 4 cols
    const Topology u = Topology::grid(10);
    EXPECT_EQ(u.numUnits(), 12); // 3 x 4 again (rounded up)
}

TEST(Topology, GridEdges)
{
    const Topology t = Topology::gridExplicit(3, 4);
    // Horizontal 3*3 + vertical 2*4.
    EXPECT_EQ(t.numEdges(), 17);
    EXPECT_TRUE(t.adjacent(0, 1));
    EXPECT_TRUE(t.adjacent(0, 4));
    EXPECT_FALSE(t.adjacent(0, 5));
}

TEST(Topology, HeavyHex65Shape)
{
    const Topology t = Topology::heavyHex65();
    EXPECT_EQ(t.numUnits(), 65);
    EXPECT_EQ(t.numEdges(), 72);
    // Bridge qubits have degree 2; row interiors degree 2-3.
    EXPECT_EQ(t.graph().degree(10), 2);
    EXPECT_TRUE(t.adjacent(10, 0));
    EXPECT_TRUE(t.adjacent(10, 13));
    // Connected.
    const auto comp = connectedComponents(t.graph());
    for (int c : comp)
        EXPECT_EQ(c, 0);
}

TEST(Topology, RingAndLine)
{
    const Topology r = Topology::ring(8);
    EXPECT_EQ(r.numEdges(), 8);
    EXPECT_TRUE(r.adjacent(0, 7));
    const Topology l = Topology::line(5);
    EXPECT_EQ(l.numEdges(), 4);
    EXPECT_FALSE(l.adjacent(0, 4));
    EXPECT_EQ(l.centerUnit(), 2);
}

TEST(Topology, CenterOfGrid)
{
    const Topology t = Topology::gridExplicit(3, 3);
    EXPECT_EQ(t.centerUnit(), 4);
}

TEST(ExpandedGraph, NodeAndEdgeCounts)
{
    // Paper section 4.1: 2V nodes, 4E + V edges.
    const Topology t = Topology::gridExplicit(2, 3); // V=6, E=7
    const ExpandedGraph xg(t);
    EXPECT_EQ(xg.numSlots(), 12);
    EXPECT_EQ(xg.graph().numEdges(), 4 * 7 + 6);
}

TEST(ExpandedGraph, Adjacency)
{
    const Topology t = Topology::line(3);
    const ExpandedGraph xg(t);
    // Internal edge.
    EXPECT_TRUE(xg.adjacent(makeSlot(0, 0), makeSlot(0, 1)));
    // All four cross edges between coupled units.
    for (int pa = 0; pa < 2; ++pa)
        for (int pb = 0; pb < 2; ++pb)
            EXPECT_TRUE(xg.adjacent(makeSlot(0, pa), makeSlot(1, pb)));
    // No edge between uncoupled units.
    EXPECT_FALSE(xg.adjacent(makeSlot(0, 0), makeSlot(2, 0)));
    EXPECT_TRUE(ExpandedGraph::sameUnit(makeSlot(1, 0), makeSlot(1, 1)));
}

TEST(SlotHelpers, RoundTrip)
{
    for (UnitId u = 0; u < 5; ++u) {
        for (int pos = 0; pos < 2; ++pos) {
            const SlotId s = makeSlot(u, pos);
            EXPECT_EQ(slotUnit(s), u);
            EXPECT_EQ(slotPos(s), pos);
        }
    }
}

TEST(GateLibrary, Table1Durations)
{
    const GateLibrary lib;
    // Spot-check every column of Table 1.
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::SqBare), 35.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::SqEnc0), 87.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::SqEnc1), 66.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::SqEncBoth), 86.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::CxInternal0), 83.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::CxInternal1), 84.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::SwapInternal), 78.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::CxBareBare), 251.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::SwapBareBare), 504.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::CxEnc0Bare), 560.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::CxEnc1Bare), 632.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::CxBareEnc0), 880.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::CxBareEnc1), 812.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::SwapBareEnc0), 680.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::SwapBareEnc1), 792.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::CxEnc00), 544.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::CxEnc01), 544.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::CxEnc10), 700.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::CxEnc11), 700.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::SwapEnc00), 916.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::SwapEnc01), 892.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::SwapEnc11), 964.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::SwapFull), 1184.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::Encode), 608.0);
}

TEST(GateLibrary, FidelityTiers)
{
    const GateLibrary lib;
    EXPECT_DOUBLE_EQ(lib.fidelity(PhysGateClass::SqBare), 0.999);
    EXPECT_DOUBLE_EQ(lib.fidelity(PhysGateClass::CxInternal0), 0.999);
    EXPECT_DOUBLE_EQ(lib.fidelity(PhysGateClass::SwapInternal), 0.999);
    EXPECT_DOUBLE_EQ(lib.fidelity(PhysGateClass::CxBareBare), 0.99);
    EXPECT_DOUBLE_EQ(lib.fidelity(PhysGateClass::SwapEnc11), 0.99);
    EXPECT_DOUBLE_EQ(lib.fidelity(PhysGateClass::Encode), 0.99);
}

TEST(GateLibrary, T1Defaults)
{
    const GateLibrary lib;
    EXPECT_DOUBLE_EQ(lib.t1Qubit(), 163500.0);
    EXPECT_DOUBLE_EQ(lib.t1Ququart(), 54500.0);
    EXPECT_NEAR(lib.t1Qubit() / 3.0, lib.t1Ququart(), 1.0);
}

TEST(GateLibrary, Overrides)
{
    GateLibrary lib;
    lib.setDuration(PhysGateClass::CxBareBare, 300.0);
    EXPECT_DOUBLE_EQ(lib.duration(PhysGateClass::CxBareBare), 300.0);
    lib.setFidelity(PhysGateClass::CxBareBare, 0.995);
    EXPECT_DOUBLE_EQ(lib.fidelity(PhysGateClass::CxBareBare), 0.995);
    lib.setT1(100000.0, 50000.0);
    EXPECT_DOUBLE_EQ(lib.t1Ququart(), 50000.0);
    lib.setQubitGateError(1e-4, 1e-3);
    EXPECT_DOUBLE_EQ(lib.fidelity(PhysGateClass::SqBare), 1.0 - 1e-4);
    EXPECT_DOUBLE_EQ(lib.fidelity(PhysGateClass::SwapBareBare),
                     1.0 - 1e-3);
    // Ququart gates untouched.
    EXPECT_DOUBLE_EQ(lib.fidelity(PhysGateClass::CxEnc00), 0.99);
    EXPECT_THROW(lib.setFidelity(PhysGateClass::SqBare, 1.5), FatalError);
    EXPECT_THROW(lib.setDuration(PhysGateClass::SqBare, -1.0),
                 FatalError);
}

TEST(Classification, CxAllCases)
{
    // Internal.
    EXPECT_EQ(classifyCx(0, true, 1, true, true),
              PhysGateClass::CxInternal0);
    EXPECT_EQ(classifyCx(1, true, 0, true, true),
              PhysGateClass::CxInternal1);
    // Bare-bare.
    EXPECT_EQ(classifyCx(0, false, 0, false, false),
              PhysGateClass::CxBareBare);
    // Encoded control, bare target.
    EXPECT_EQ(classifyCx(0, true, 0, false, false),
              PhysGateClass::CxEnc0Bare);
    EXPECT_EQ(classifyCx(1, true, 0, false, false),
              PhysGateClass::CxEnc1Bare);
    // Bare control, encoded target.
    EXPECT_EQ(classifyCx(0, false, 0, true, false),
              PhysGateClass::CxBareEnc0);
    EXPECT_EQ(classifyCx(0, false, 1, true, false),
              PhysGateClass::CxBareEnc1);
    // Encoded-encoded.
    EXPECT_EQ(classifyCx(0, true, 0, true, false),
              PhysGateClass::CxEnc00);
    EXPECT_EQ(classifyCx(0, true, 1, true, false),
              PhysGateClass::CxEnc01);
    EXPECT_EQ(classifyCx(1, true, 0, true, false),
              PhysGateClass::CxEnc10);
    EXPECT_EQ(classifyCx(1, true, 1, true, false),
              PhysGateClass::CxEnc11);
}

TEST(Classification, SwapAllCases)
{
    EXPECT_EQ(classifySwap(0, true, 1, true, true),
              PhysGateClass::SwapInternal);
    EXPECT_EQ(classifySwap(0, false, 0, false, false),
              PhysGateClass::SwapBareBare);
    EXPECT_EQ(classifySwap(0, true, 0, false, false),
              PhysGateClass::SwapBareEnc0);
    EXPECT_EQ(classifySwap(0, false, 1, true, false),
              PhysGateClass::SwapBareEnc1);
    EXPECT_EQ(classifySwap(0, true, 0, true, false),
              PhysGateClass::SwapEnc00);
    EXPECT_EQ(classifySwap(0, true, 1, true, false),
              PhysGateClass::SwapEnc01);
    EXPECT_EQ(classifySwap(1, true, 0, true, false),
              PhysGateClass::SwapEnc01); // symmetric
    EXPECT_EQ(classifySwap(1, true, 1, true, false),
              PhysGateClass::SwapEnc11);
}

TEST(Classification, SqCases)
{
    EXPECT_EQ(classifySq(0, false), PhysGateClass::SqBare);
    EXPECT_EQ(classifySq(0, true), PhysGateClass::SqEnc0);
    EXPECT_EQ(classifySq(1, true), PhysGateClass::SqEnc1);
}

TEST(Classification, NamesMatchPaperNotation)
{
    EXPECT_EQ(physGateClassName(PhysGateClass::CxEnc0Bare), "CX0q");
    EXPECT_EQ(physGateClassName(PhysGateClass::CxBareEnc1), "CXq1");
    EXPECT_EQ(physGateClassName(PhysGateClass::SwapFull), "SWAP4");
    EXPECT_EQ(physGateClassName(PhysGateClass::SwapInternal), "SWAPin");
    EXPECT_TRUE(isSingleUnitClass(PhysGateClass::SwapInternal));
    EXPECT_FALSE(isSingleUnitClass(PhysGateClass::SwapFull));
}

} // namespace
} // namespace qompress
