/**
 * @file
 * Tests for the mixed-radix statevector simulator and gate unitaries.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/gate_unitaries.hh"
#include "sim/statevector.hh"

namespace qompress {
namespace {

TEST(Statevector, InitialStateIsZero)
{
    MixedRadixState s({2, 4});
    EXPECT_EQ(s.size(), 8u);
    EXPECT_NEAR(std::abs(s.amp(0)), 1.0, 1e-12);
    EXPECT_NEAR(s.norm(), 1.0, 1e-12);
}

TEST(Statevector, DigitsAndIndexRoundTrip)
{
    MixedRadixState s({2, 4, 3});
    const std::size_t idx = s.indexOf({1, 3, 2});
    EXPECT_EQ(s.digit(idx, 0), 1);
    EXPECT_EQ(s.digit(idx, 1), 3);
    EXPECT_EQ(s.digit(idx, 2), 2);
}

TEST(Statevector, ProductStateAmplitudes)
{
    const double s2 = 1.0 / std::sqrt(2.0);
    auto st = MixedRadixState::product({{s2, s2}, {0.0, 1.0}});
    EXPECT_NEAR(std::abs(st.amp(st.indexOf({0, 1}))), s2, 1e-12);
    EXPECT_NEAR(std::abs(st.amp(st.indexOf({1, 1}))), s2, 1e-12);
    EXPECT_NEAR(std::abs(st.amp(st.indexOf({0, 0}))), 0.0, 1e-12);
}

TEST(Statevector, ApplyXFlipsBit)
{
    MixedRadixState s({2, 2});
    s.applyUnitary({1}, gate1q(GateType::X));
    EXPECT_NEAR(std::abs(s.amp(s.indexOf({0, 1}))), 1.0, 1e-12);
}

TEST(Statevector, ApplyPreservesNorm)
{
    MixedRadixState s({2, 4});
    s.applyUnitary({0}, gate1q(GateType::H));
    Gate cx{GateType::CX, {0, 1}};
    // Apply CX onto encoded pos-0 of the second unit.
    PhysGate pg;
    pg.cls = PhysGateClass::CxBareEnc0;
    pg.slots = {makeSlot(0, 0), makeSlot(1, 0)};
    pg.logical = GateType::CX;
    s.applyUnitary({0, 1}, physGateUnitary(pg, {2, 4}, {false, true}));
    EXPECT_NEAR(s.norm(), 1.0, 1e-12);
}

TEST(Statevector, OverlapOfIdenticalStatesIsOne)
{
    MixedRadixState a({2, 2}), b({2, 2});
    a.applyUnitary({0}, gate1q(GateType::H));
    b.applyUnitary({0}, gate1q(GateType::H));
    EXPECT_NEAR(MixedRadixState::overlap(a, b), 1.0, 1e-12);
}

TEST(GateUnitaries, OneQubitGatesAreUnitary)
{
    for (GateType t : {GateType::X, GateType::Y, GateType::Z,
                       GateType::H, GateType::S, GateType::Sdg,
                       GateType::T, GateType::Tdg}) {
        EXPECT_TRUE(isUnitary(gate1q(t))) << gateName(t);
    }
    EXPECT_TRUE(isUnitary(gate1q(GateType::RZ, 0.7)));
    EXPECT_TRUE(isUnitary(gate1q(GateType::RX, 1.3)));
    EXPECT_TRUE(isUnitary(gate1q(GateType::RY, -0.4)));
}

TEST(GateUnitaries, SAndTRelations)
{
    // S = T^2 and S * Sdg = I.
    const auto t = gate1q(GateType::T);
    const auto s = gate1q(GateType::S);
    EXPECT_NEAR(std::abs(t[1][1] * t[1][1] - s[1][1]), 0.0, 1e-12);
    const auto sdg = gate1q(GateType::Sdg);
    EXPECT_NEAR(std::abs(s[1][1] * sdg[1][1] - Cplx(1.0)), 0.0, 1e-12);
}

TEST(GateUnitaries, LogicalCcxPermutation)
{
    const auto m = logicalGateUnitary(Gate{GateType::CCX, {0, 1, 2}});
    EXPECT_TRUE(isUnitary(m));
    // |110> -> |111>, |111> -> |110>, |101> fixed.
    EXPECT_NEAR(std::abs(m[7][6]), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(m[6][7]), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(m[5][5]), 1.0, 1e-12);
}

PhysGate
makeGate(PhysGateClass cls, std::vector<SlotId> slots,
         GateType logical = GateType::X)
{
    PhysGate g;
    g.cls = cls;
    g.slots = std::move(slots);
    g.logical = logical;
    return g;
}

TEST(GateUnitaries, AllTwoUnitClassesAreUnitary)
{
    struct Case
    {
        PhysGateClass cls;
        std::vector<SlotId> slots; // units 0 and 1
        std::vector<int> dims;
        std::vector<bool> enc;
    };
    const std::vector<Case> cases = {
        {PhysGateClass::CxBareBare,
         {makeSlot(0, 0), makeSlot(1, 0)}, {2, 2}, {false, false}},
        {PhysGateClass::CxEnc0Bare,
         {makeSlot(0, 0), makeSlot(1, 0)}, {4, 2}, {true, false}},
        {PhysGateClass::CxEnc1Bare,
         {makeSlot(0, 1), makeSlot(1, 0)}, {4, 2}, {true, false}},
        {PhysGateClass::CxBareEnc0,
         {makeSlot(0, 0), makeSlot(1, 0)}, {2, 4}, {false, true}},
        {PhysGateClass::CxBareEnc1,
         {makeSlot(0, 0), makeSlot(1, 1)}, {2, 4}, {false, true}},
        {PhysGateClass::CxEnc00,
         {makeSlot(0, 0), makeSlot(1, 0)}, {4, 4}, {true, true}},
        {PhysGateClass::CxEnc11,
         {makeSlot(0, 1), makeSlot(1, 1)}, {4, 4}, {true, true}},
        {PhysGateClass::SwapBareBare,
         {makeSlot(0, 0), makeSlot(1, 0)}, {2, 2}, {false, false}},
        {PhysGateClass::SwapBareEnc0,
         {makeSlot(0, 0), makeSlot(1, 0)}, {2, 4}, {false, true}},
        {PhysGateClass::SwapEnc01,
         {makeSlot(0, 0), makeSlot(1, 1)}, {4, 4}, {true, true}},
        {PhysGateClass::SwapFull,
         {makeSlot(0, 0), makeSlot(1, 0)}, {4, 4}, {true, true}},
        {PhysGateClass::Encode,
         {makeSlot(0, 0), makeSlot(1, 0)}, {4, 2}, {false, false}},
        {PhysGateClass::Decode,
         {makeSlot(0, 0), makeSlot(1, 0)}, {4, 2}, {true, false}},
    };
    for (const auto &c : cases) {
        const auto u = physGateUnitary(
            makeGate(c.cls, c.slots, GateType::Swap), c.dims, c.enc);
        EXPECT_TRUE(isUnitary(u)) << physGateClassName(c.cls);
    }
}

TEST(GateUnitaries, InternalCxActsOnEncodedBits)
{
    // CX0: control = pos 0 (high bit), target = pos 1 (low bit).
    const auto u = physGateUnitary(
        makeGate(PhysGateClass::CxInternal0,
                 {makeSlot(0, 0), makeSlot(0, 1)}, GateType::CX),
        {4}, {true});
    // |2> = (1,0) -> (1,1) = |3>.
    EXPECT_NEAR(std::abs(u[3][2]), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(u[0][0]), 1.0, 1e-12);
}

TEST(GateUnitaries, SwapInternalExchangesMiddleLevels)
{
    const auto u = physGateUnitary(
        makeGate(PhysGateClass::SwapInternal,
                 {makeSlot(0, 0), makeSlot(0, 1)}, GateType::Swap),
        {4}, {true});
    EXPECT_NEAR(std::abs(u[2][1]), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(u[1][2]), 1.0, 1e-12);
}

TEST(GateUnitaries, EncodePermutationMatchesPaper)
{
    // |q0>_u |q1>_v -> |2 q0 + q1>_u |0>_v  (Eq. 2).
    const auto u = physGateUnitary(
        makeGate(PhysGateClass::Encode,
                 {makeSlot(0, 0), makeSlot(1, 0)}, GateType::Swap),
        {4, 2}, {false, false});
    // Input (1,0) = index 1*2+0 = 2 -> output (2,0) = index 4.
    EXPECT_NEAR(std::abs(u[4][2]), 1.0, 1e-12);
    // Input (1,1) = 3 -> (3,0) = 6.
    EXPECT_NEAR(std::abs(u[6][3]), 1.0, 1e-12);
}

TEST(GateUnitaries, DecodeInvertsEncode)
{
    const auto enc = physGateUnitary(
        makeGate(PhysGateClass::Encode,
                 {makeSlot(0, 0), makeSlot(1, 0)}, GateType::Swap),
        {4, 2}, {false, false});
    const auto dec = physGateUnitary(
        makeGate(PhysGateClass::Decode,
                 {makeSlot(0, 0), makeSlot(1, 0)}, GateType::Swap),
        {4, 2}, {true, false});
    // dec * enc == identity.
    for (int i = 0; i < 8; ++i) {
        for (int j = 0; j < 8; ++j) {
            Cplx acc = 0.0;
            for (int k = 0; k < 8; ++k)
                acc += dec[i][k] * enc[k][j];
            EXPECT_NEAR(std::abs(acc - (i == j ? 1.0 : 0.0)), 0.0, 1e-12);
        }
    }
}

TEST(GateUnitaries, BareGateOnDim4UnitLeavesHighLevels)
{
    PhysGate g = makeGate(PhysGateClass::SqBare, {makeSlot(0, 0)},
                          GateType::H);
    const auto u = physGateUnitary(g, {4}, {false});
    EXPECT_TRUE(isUnitary(u));
    EXPECT_NEAR(std::abs(u[2][2]), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(u[3][3]), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(u[0][0] - 1.0 / std::sqrt(2.0)), 0.0, 1e-12);
}

} // namespace
} // namespace qompress
