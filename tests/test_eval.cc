/**
 * @file
 * Tests for the evaluation sweep harness.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "eval/sweep.hh"

namespace qompress {
namespace {

TEST(Sweep, ProducesOneRecordPerCell)
{
    SweepSpec spec;
    spec.families = {"cuccaro"};
    spec.sizes = {10, 14};
    spec.strategies = {"qubit_only", "eqm"};
    const auto records = runSweep(spec);
    EXPECT_EQ(records.size(), 4u);
    for (const auto &r : records) {
        EXPECT_GT(r.qubits, 0);
        EXPECT_GT(r.metrics.totalEps, 0.0);
    }
}

TEST(Sweep, DeduplicatesSnappedSizes)
{
    // qram snaps 22 and 25 to the same 20-qubit instance.
    SweepSpec spec;
    spec.families = {"qram"};
    spec.sizes = {22, 25};
    spec.strategies = {"qubit_only"};
    const auto records = runSweep(spec);
    EXPECT_EQ(records.size(), 1u);
}

TEST(Sweep, SkipsSizesBelowFamilyMinimum)
{
    SweepSpec spec;
    spec.families = {"qaoa_torus"}; // needs >= 12
    spec.sizes = {5, 16};
    spec.strategies = {"qubit_only"};
    const auto records = runSweep(spec);
    EXPECT_EQ(records.size(), 1u);
}

TEST(Sweep, RecordsNonFittingStrategiesWithZeroQubits)
{
    SweepSpec spec;
    spec.families = {"cuccaro"};
    spec.sizes = {12};
    spec.strategies = {"qubit_only", "eqm"};
    spec.device = [](const Circuit &c) {
        return Topology::grid((c.numQubits() + 1) / 2); // half size
    };
    const auto records = runSweep(spec);
    ASSERT_EQ(records.size(), 2u);
    for (const auto &r : records) {
        if (r.strategy == "qubit_only")
            EXPECT_EQ(r.qubits, 0); // did not fit
        else
            EXPECT_GT(r.qubits, 0);
    }
    // filterSweep drops the non-fitting record.
    EXPECT_TRUE(filterSweep(records, "cuccaro", "qubit_only").empty());
    EXPECT_EQ(filterSweep(records, "cuccaro", "eqm").size(), 1u);
}

TEST(Sweep, RatiosPairUpBySize)
{
    SweepSpec spec;
    spec.families = {"cnu"};
    spec.sizes = {11, 15};
    spec.strategies = {"qubit_only", "rb"};
    const auto records = runSweep(spec);
    const auto ratios =
        sweepRatios(records, "cnu", "rb", "qubit_only",
                    [](const Metrics &m) { return m.gateEps; });
    EXPECT_EQ(ratios.size(), 2u);
    for (double r : ratios)
        EXPECT_GT(r, 0.0);
    // Baseline over itself is exactly 1.
    const auto self =
        sweepRatios(records, "cnu", "qubit_only", "qubit_only",
                    [](const Metrics &m) { return m.gateEps; });
    for (double r : self)
        EXPECT_DOUBLE_EQ(r, 1.0);
}

TEST(Sweep, RejectsEmptySpecs)
{
    SweepSpec spec;
    EXPECT_THROW(runSweep(spec), FatalError);
}

} // namespace
} // namespace qompress
