/**
 * @file
 * Unit tests for the circuit IR: gates, circuits, passes, interaction
 * analysis.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "circuits/registry.hh"
#include "common/error.hh"
#include "ir/circuit.hh"
#include "ir/fingerprint.hh"
#include "ir/interaction.hh"
#include "ir/passes.hh"
#include "ir/qasm.hh"

namespace qompress {
namespace {

TEST(Gate, ArityAndNames)
{
    EXPECT_EQ(gateArity(GateType::X), 1);
    EXPECT_EQ(gateArity(GateType::CX), 2);
    EXPECT_EQ(gateArity(GateType::CCX), 3);
    EXPECT_EQ(gateName(GateType::Swap), "swap");
    EXPECT_TRUE(gateHasParam(GateType::RZ));
    EXPECT_FALSE(gateHasParam(GateType::H));
}

TEST(Gate, StrRendering)
{
    Gate g{GateType::CX, {3, 7}};
    EXPECT_EQ(g.str(), "cx q3, q7");
    Gate r{GateType::RZ, {1}, 0.5};
    EXPECT_EQ(r.str(), "rz(0.5) q1");
    EXPECT_TRUE(g.actsOn(3));
    EXPECT_FALSE(g.actsOn(4));
}

TEST(Circuit, BuildersAndValidation)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.ccx(0, 1, 2);
    EXPECT_EQ(c.numGates(), 3);
    EXPECT_EQ(c.numTwoQubitGates(), 1);
    EXPECT_THROW(c.cx(0, 0), PanicError);   // duplicate operand
    EXPECT_THROW(c.x(5), PanicError);       // out of range
}

TEST(Circuit, DuplicateOperandFromQasmIsFatalNotPanic)
{
    // Regression: `cx q[0],q[0]` arriving as untrusted QASM used to
    // sail past the parser and trip Circuit::add's QPANIC — the
    // internal-bug error class (a 500 at the server), not the
    // bad-input class. The parser must reject it as a FatalError
    // naming the line, for every multi-qubit gate shape.
    const std::vector<std::string> dup = {
        "OPENQASM 2.0;\nqreg q[3];\ncx q[0],q[0];",
        "OPENQASM 2.0;\nqreg q[3];\ncz q[2],q[2];",
        "OPENQASM 2.0;\nqreg q[3];\nswap q[1],q[1];",
        "OPENQASM 2.0;\nqreg q[3];\nccx q[0],q[1],q[0];",
        "OPENQASM 2.0;\nqreg q[3];\nccx q[0],q[1],q[1];",
    };
    for (const std::string &src : dup) {
        try {
            parseQasm(src);
            FAIL() << "expected FatalError for: " << src;
        } catch (const FatalError &e) {
            const std::string msg = e.what();
            EXPECT_NE(msg.find("duplicate qubit operand"),
                      std::string::npos) << msg;
            EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
        }
    }
    // Distinct operands still parse.
    const Circuit ok =
        parseQasm("OPENQASM 2.0; qreg q[2]; cx q[0],q[1];");
    EXPECT_EQ(ok.numGates(), 1);
}

TEST(Circuit, AsapLayersAndDepth)
{
    Circuit c(3);
    c.h(0);        // layer 1
    c.h(1);        // layer 1
    c.cx(0, 1);    // layer 2
    c.x(2);        // layer 1
    c.cx(1, 2);    // layer 3
    const auto layers = c.asapLayers();
    const std::vector<int> want{1, 1, 2, 1, 3};
    EXPECT_EQ(layers, want);
    EXPECT_EQ(c.depth(), 3);
}

TEST(Circuit, AppendAndHighestUsed)
{
    Circuit a(2), b(4);
    a.cx(0, 1);
    b.append(a);
    EXPECT_EQ(b.numGates(), 1);
    EXPECT_EQ(b.highestUsedQubit(), 2);
    Circuit small(1);
    EXPECT_THROW(small.append(b), PanicError);
}

TEST(Circuit, QasmDump)
{
    Circuit c(2);
    c.h(0);
    c.rz(0.25, 1);
    c.cx(0, 1);
    const std::string qasm = c.toQasm();
    EXPECT_NE(qasm.find("qreg q[2];"), std::string::npos);
    EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
    EXPECT_NE(qasm.find("rz(0.25) q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("cx q[0], q[1];"), std::string::npos);
}

TEST(Passes, CcxDecomposesToFifteenNativeGates)
{
    Circuit c(3);
    c.ccx(0, 1, 2);
    const Circuit native = decomposeToNativeGates(c);
    EXPECT_TRUE(isNative(native));
    EXPECT_EQ(native.numGates(), 15);
    EXPECT_EQ(native.numTwoQubitGates(), 6);
}

TEST(Passes, CzLowersToHCxH)
{
    Circuit c(2);
    c.cz(0, 1);
    const Circuit native = decomposeToNativeGates(c);
    ASSERT_EQ(native.numGates(), 3);
    EXPECT_EQ(native.gates()[0].type, GateType::H);
    EXPECT_EQ(native.gates()[1].type, GateType::CX);
    EXPECT_EQ(native.gates()[2].type, GateType::H);
}

TEST(Passes, NativeGatesPassThrough)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.swap(0, 1);
    const Circuit native = decomposeToNativeGates(c);
    EXPECT_EQ(native.numGates(), 3);
    EXPECT_TRUE(isNative(c));
}

TEST(Passes, CancelAdjacentPairs)
{
    Circuit c(2);
    c.h(0);
    c.h(0);        // cancels
    c.cx(0, 1);
    c.cx(0, 1);    // cancels
    c.x(1);
    const Circuit out = cancelAdjacentPairs(c);
    EXPECT_EQ(out.numGates(), 1);
    EXPECT_EQ(out.gates()[0].type, GateType::X);
}

TEST(Passes, CancelDoesNotCrossInterveningGate)
{
    Circuit c(2);
    c.h(0);
    c.x(0);
    c.h(0); // must NOT cancel with the first h
    const Circuit out = cancelAdjacentPairs(c);
    EXPECT_EQ(out.numGates(), 3);
}

TEST(Interaction, WeightsFollowOneOverTimestep)
{
    Circuit c(3);
    c.cx(0, 1); // layer 1: w(0,1) += 1
    c.cx(1, 2); // layer 2: w(1,2) += 1/2
    c.cx(0, 1); // layer 3: w(0,1) += 1/3
    const InteractionModel im(c);
    EXPECT_NEAR(im.weight(0, 1), 1.0 + 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(im.weight(1, 2), 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(im.weight(0, 2), 0.0);
    EXPECT_NEAR(im.totalWeight(1), 1.0 + 1.0 / 3.0 + 0.5, 1e-12);
    EXPECT_EQ(im.pairGateCount(0, 1), 2);
    EXPECT_EQ(im.pairGateCount(0, 2), 0);
}

TEST(Interaction, SimultaneousUseCountsParallelGates)
{
    Circuit c(4);
    c.cx(0, 1); // layer 1
    c.cx(2, 3); // layer 1: (0,2), (0,3), (1,2), (1,3) simultaneous
    const InteractionModel im(c);
    EXPECT_EQ(im.simultaneousUse(0, 2), 1);
    EXPECT_EQ(im.simultaneousUse(1, 3), 1);
    EXPECT_EQ(im.simultaneousUse(0, 1), 0); // same gate
}

TEST(Interaction, SharedNeighbors)
{
    Circuit c(4);
    c.cx(0, 2);
    c.cx(1, 2);
    c.cx(0, 3);
    c.cx(1, 3);
    const InteractionModel im(c);
    EXPECT_EQ(im.sharedNeighbors(0, 1), 2); // both touch 2 and 3
    EXPECT_EQ(im.sharedNeighbors(2, 3), 2);
}

// ------------------------------------------------------------------
// Canonical circuit fingerprint (the service memo cache's identity)
// ------------------------------------------------------------------

namespace {

Circuit
fingerprintFixture()
{
    Circuit c(3, "fp_fixture");
    c.h(0);
    c.cx(0, 1);
    c.rz(0.5, 2); // 0.5 survives toQasm's %.12g exactly
    c.ccx(0, 1, 2);
    return c;
}

} // namespace

TEST(CircuitFingerprint, StableAcrossRebuildsAndReparses)
{
    const Circuit a = fingerprintFixture();
    const Circuit b = fingerprintFixture();
    EXPECT_EQ(circuitFingerprint(a), circuitFingerprint(b));

    // A dump/parse round trip that reproduces the content (same name,
    // parameters exactly representable at toQasm's %.12g) fingerprints
    // identically -- the artifact cache survives serialization.
    const Circuit reparsed = parseQasm(a.toQasm(), a.name());
    EXPECT_EQ(circuitFingerprint(a), circuitFingerprint(reparsed));
}

TEST(CircuitFingerprint, SensitiveToEveryContentChange)
{
    const Circuit base = fingerprintFixture();
    const std::uint64_t fp = circuitFingerprint(base);

    { // gate type
        Circuit c(3, "fp_fixture");
        c.x(0); // was h
        c.cx(0, 1);
        c.rz(0.5, 2);
        c.ccx(0, 1, 2);
        EXPECT_NE(circuitFingerprint(c), fp);
    }
    { // operand order
        Circuit c(3, "fp_fixture");
        c.h(0);
        c.cx(1, 0); // was cx(0, 1)
        c.rz(0.5, 2);
        c.ccx(0, 1, 2);
        EXPECT_NE(circuitFingerprint(c), fp);
    }
    { // parameter, down to the last bit
        Circuit c(3, "fp_fixture");
        c.h(0);
        c.cx(0, 1);
        c.rz(0.5 + 1e-15, 2);
        c.ccx(0, 1, 2);
        EXPECT_NE(circuitFingerprint(c), fp);
    }
    { // appended gate
        Circuit c = fingerprintFixture();
        c.x(0);
        EXPECT_NE(circuitFingerprint(c), fp);
    }
    { // gate order
        Circuit c(3, "fp_fixture");
        c.cx(0, 1);
        c.h(0); // swapped with the cx
        c.rz(0.5, 2);
        c.ccx(0, 1, 2);
        EXPECT_NE(circuitFingerprint(c), fp);
    }
    { // width (same gates, one more idle qubit)
        Circuit c(4, "fp_fixture");
        c.h(0);
        c.cx(0, 1);
        c.rz(0.5, 2);
        c.ccx(0, 1, 2);
        EXPECT_NE(circuitFingerprint(c), fp);
    }
    { // name (the compiled artifact embeds it)
        Circuit c = fingerprintFixture();
        c.setName("renamed");
        EXPECT_NE(circuitFingerprint(c), fp);
    }
    { // the sign of zero is a representational change
        Circuit pos(1, "z");
        pos.rz(0.0, 0);
        Circuit neg(1, "z");
        neg.rz(-0.0, 0);
        EXPECT_NE(circuitFingerprint(pos), circuitFingerprint(neg));
    }
}

TEST(CircuitFingerprint, CanonicalParamSurvivesQasmRoundTrip)
{
    // toQasm prints parameters at %.12g, so an angle with more
    // significant digits fingerprints differently after a dump/parse
    // round trip -- the documented caveat. canonicalQasmParam snaps an
    // angle to its %.12g representative, making round trips stable.
    const double raw = 0.1234567890123456789; // > 12 significant digits
    Circuit lossy(1, "rt");
    lossy.rz(raw, 0);
    const Circuit lossy_rt = parseQasm(lossy.toQasm(), lossy.name());
    EXPECT_NE(circuitFingerprint(lossy), circuitFingerprint(lossy_rt));

    Circuit canon(1, "rt");
    canon.rz(canonicalQasmParam(raw), 0);
    const Circuit canon_rt = parseQasm(canon.toQasm(), canon.name());
    EXPECT_EQ(circuitFingerprint(canon), circuitFingerprint(canon_rt));

    // Snapping is idempotent and exact for representable values.
    EXPECT_EQ(canonicalQasmParam(canonicalQasmParam(raw)),
              canonicalQasmParam(raw));
    EXPECT_EQ(canonicalQasmParam(0.5), 0.5);
}

// ------------------------------------------------------------------
// Structural fingerprint (the template tier's identity)
// ------------------------------------------------------------------

TEST(StructuralFingerprint, InvariantToParameterValuesAndName)
{
    const Circuit base = fingerprintFixture();
    const auto sfp = structuralCircuitFingerprint(base);

    { // any parameter change preserves the structural fp
        Circuit c(3, "fp_fixture");
        c.h(0);
        c.cx(0, 1);
        c.rz(-2.75, 2); // was rz(0.5)
        c.ccx(0, 1, 2);
        EXPECT_EQ(structuralCircuitFingerprint(c).value, sfp.value);
        EXPECT_EQ(structuralCircuitFingerprint(c).paramGates,
                  sfp.paramGates);
    }
    { // ... including the sign of zero
        Circuit pos(1, "z"), neg(1, "z");
        pos.rz(0.0, 0);
        neg.rz(-0.0, 0);
        EXPECT_EQ(structuralCircuitFingerprint(pos).value,
                  structuralCircuitFingerprint(neg).value);
    }
    { // the name is not structure (rebind stamps the instance's name)
        Circuit c = fingerprintFixture();
        c.setName("renamed");
        EXPECT_EQ(structuralCircuitFingerprint(c).value, sfp.value);
    }
    // The exact fingerprint still distinguishes what the structural
    // one identifies (the two tiers key different things).
    Circuit other(3, "fp_fixture");
    other.h(0);
    other.cx(0, 1);
    other.rz(1.25, 2);
    other.ccx(0, 1, 2);
    EXPECT_NE(circuitFingerprint(other), circuitFingerprint(base));
}

TEST(StructuralFingerprint, SensitiveToEveryStructuralChange)
{
    const Circuit base = fingerprintFixture();
    const std::uint64_t fp = structuralCircuitFingerprint(base).value;

    { // gate type
        Circuit c(3, "fp_fixture");
        c.x(0); // was h
        c.cx(0, 1);
        c.rz(0.5, 2);
        c.ccx(0, 1, 2);
        EXPECT_NE(structuralCircuitFingerprint(c).value, fp);
    }
    { // parameterized gate type (same slot layout, different axis)
        Circuit c(3, "fp_fixture");
        c.h(0);
        c.cx(0, 1);
        c.rx(0.5, 2); // was rz
        c.ccx(0, 1, 2);
        EXPECT_NE(structuralCircuitFingerprint(c).value, fp);
    }
    { // operand order
        Circuit c(3, "fp_fixture");
        c.h(0);
        c.cx(1, 0); // was cx(0, 1)
        c.rz(0.5, 2);
        c.ccx(0, 1, 2);
        EXPECT_NE(structuralCircuitFingerprint(c).value, fp);
    }
    { // appended gate
        Circuit c = fingerprintFixture();
        c.x(0);
        EXPECT_NE(structuralCircuitFingerprint(c).value, fp);
    }
    { // gate order
        Circuit c(3, "fp_fixture");
        c.cx(0, 1);
        c.h(0); // swapped with the cx
        c.rz(0.5, 2);
        c.ccx(0, 1, 2);
        EXPECT_NE(structuralCircuitFingerprint(c).value, fp);
    }
    { // width
        Circuit c(4, "fp_fixture");
        c.h(0);
        c.cx(0, 1);
        c.rz(0.5, 2);
        c.ccx(0, 1, 2);
        EXPECT_NE(structuralCircuitFingerprint(c).value, fp);
    }
}

TEST(StructuralFingerprint, ParamGatesListsSlotsInProgramOrder)
{
    Circuit c(3, "slots");
    c.h(0);           // no slot
    c.rz(0.1, 0);     // slot 0 -> gate 1
    c.cx(0, 1);       // no slot
    c.rx(0.2, 1);     // slot 1 -> gate 3
    c.ry(0.3, 2);     // slot 2 -> gate 4
    const auto sfp = structuralCircuitFingerprint(c);
    const std::vector<int> want{1, 3, 4};
    EXPECT_EQ(sfp.paramGates, want);

    // An unparameterized circuit exposes no slots.
    Circuit plain(2, "plain");
    plain.h(0);
    plain.cx(0, 1);
    EXPECT_TRUE(
        structuralCircuitFingerprint(plain).paramGates.empty());
}

TEST(CircuitFingerprint, NoCollisionsAcrossTheRegistry)
{
    // Every registry family at several sizes: all distinct circuits
    // must have distinct fingerprints (a collision here would let the
    // artifact cache serve the wrong compile).
    std::map<std::uint64_t, std::string> seen;
    for (const auto &family : benchmarkFamilies()) {
        std::set<int> family_sizes; // families snap sizes downward
        for (int size : {6, 8, 10, 12, 16}) {
            if (size < family.minQubits)
                continue;
            const Circuit c = family.make(size);
            if (!family_sizes.insert(c.numQubits()).second)
                continue; // snapped duplicate of a smaller request
            const std::uint64_t fp = circuitFingerprint(c);
            const auto label = family.name + "/" +
                               std::to_string(c.numQubits());
            const auto [it, inserted] = seen.emplace(fp, label);
            EXPECT_TRUE(inserted)
                << label << " collides with " << it->second;
        }
    }
    EXPECT_GE(seen.size(), 20u);
}

} // namespace
} // namespace qompress
