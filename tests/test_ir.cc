/**
 * @file
 * Unit tests for the circuit IR: gates, circuits, passes, interaction
 * analysis.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "ir/circuit.hh"
#include "ir/interaction.hh"
#include "ir/passes.hh"

namespace qompress {
namespace {

TEST(Gate, ArityAndNames)
{
    EXPECT_EQ(gateArity(GateType::X), 1);
    EXPECT_EQ(gateArity(GateType::CX), 2);
    EXPECT_EQ(gateArity(GateType::CCX), 3);
    EXPECT_EQ(gateName(GateType::Swap), "swap");
    EXPECT_TRUE(gateHasParam(GateType::RZ));
    EXPECT_FALSE(gateHasParam(GateType::H));
}

TEST(Gate, StrRendering)
{
    Gate g{GateType::CX, {3, 7}};
    EXPECT_EQ(g.str(), "cx q3, q7");
    Gate r{GateType::RZ, {1}, 0.5};
    EXPECT_EQ(r.str(), "rz(0.5) q1");
    EXPECT_TRUE(g.actsOn(3));
    EXPECT_FALSE(g.actsOn(4));
}

TEST(Circuit, BuildersAndValidation)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.ccx(0, 1, 2);
    EXPECT_EQ(c.numGates(), 3);
    EXPECT_EQ(c.numTwoQubitGates(), 1);
    EXPECT_THROW(c.cx(0, 0), PanicError);   // duplicate operand
    EXPECT_THROW(c.x(5), PanicError);       // out of range
}

TEST(Circuit, AsapLayersAndDepth)
{
    Circuit c(3);
    c.h(0);        // layer 1
    c.h(1);        // layer 1
    c.cx(0, 1);    // layer 2
    c.x(2);        // layer 1
    c.cx(1, 2);    // layer 3
    const auto layers = c.asapLayers();
    const std::vector<int> want{1, 1, 2, 1, 3};
    EXPECT_EQ(layers, want);
    EXPECT_EQ(c.depth(), 3);
}

TEST(Circuit, AppendAndHighestUsed)
{
    Circuit a(2), b(4);
    a.cx(0, 1);
    b.append(a);
    EXPECT_EQ(b.numGates(), 1);
    EXPECT_EQ(b.highestUsedQubit(), 2);
    Circuit small(1);
    EXPECT_THROW(small.append(b), PanicError);
}

TEST(Circuit, QasmDump)
{
    Circuit c(2);
    c.h(0);
    c.rz(0.25, 1);
    c.cx(0, 1);
    const std::string qasm = c.toQasm();
    EXPECT_NE(qasm.find("qreg q[2];"), std::string::npos);
    EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
    EXPECT_NE(qasm.find("rz(0.25) q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("cx q[0], q[1];"), std::string::npos);
}

TEST(Passes, CcxDecomposesToFifteenNativeGates)
{
    Circuit c(3);
    c.ccx(0, 1, 2);
    const Circuit native = decomposeToNativeGates(c);
    EXPECT_TRUE(isNative(native));
    EXPECT_EQ(native.numGates(), 15);
    EXPECT_EQ(native.numTwoQubitGates(), 6);
}

TEST(Passes, CzLowersToHCxH)
{
    Circuit c(2);
    c.cz(0, 1);
    const Circuit native = decomposeToNativeGates(c);
    ASSERT_EQ(native.numGates(), 3);
    EXPECT_EQ(native.gates()[0].type, GateType::H);
    EXPECT_EQ(native.gates()[1].type, GateType::CX);
    EXPECT_EQ(native.gates()[2].type, GateType::H);
}

TEST(Passes, NativeGatesPassThrough)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.swap(0, 1);
    const Circuit native = decomposeToNativeGates(c);
    EXPECT_EQ(native.numGates(), 3);
    EXPECT_TRUE(isNative(c));
}

TEST(Passes, CancelAdjacentPairs)
{
    Circuit c(2);
    c.h(0);
    c.h(0);        // cancels
    c.cx(0, 1);
    c.cx(0, 1);    // cancels
    c.x(1);
    const Circuit out = cancelAdjacentPairs(c);
    EXPECT_EQ(out.numGates(), 1);
    EXPECT_EQ(out.gates()[0].type, GateType::X);
}

TEST(Passes, CancelDoesNotCrossInterveningGate)
{
    Circuit c(2);
    c.h(0);
    c.x(0);
    c.h(0); // must NOT cancel with the first h
    const Circuit out = cancelAdjacentPairs(c);
    EXPECT_EQ(out.numGates(), 3);
}

TEST(Interaction, WeightsFollowOneOverTimestep)
{
    Circuit c(3);
    c.cx(0, 1); // layer 1: w(0,1) += 1
    c.cx(1, 2); // layer 2: w(1,2) += 1/2
    c.cx(0, 1); // layer 3: w(0,1) += 1/3
    const InteractionModel im(c);
    EXPECT_NEAR(im.weight(0, 1), 1.0 + 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(im.weight(1, 2), 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(im.weight(0, 2), 0.0);
    EXPECT_NEAR(im.totalWeight(1), 1.0 + 1.0 / 3.0 + 0.5, 1e-12);
    EXPECT_EQ(im.pairGateCount(0, 1), 2);
    EXPECT_EQ(im.pairGateCount(0, 2), 0);
}

TEST(Interaction, SimultaneousUseCountsParallelGates)
{
    Circuit c(4);
    c.cx(0, 1); // layer 1
    c.cx(2, 3); // layer 1: (0,2), (0,3), (1,2), (1,3) simultaneous
    const InteractionModel im(c);
    EXPECT_EQ(im.simultaneousUse(0, 2), 1);
    EXPECT_EQ(im.simultaneousUse(1, 3), 1);
    EXPECT_EQ(im.simultaneousUse(0, 1), 0); // same gate
}

TEST(Interaction, SharedNeighbors)
{
    Circuit c(4);
    c.cx(0, 2);
    c.cx(1, 2);
    c.cx(0, 3);
    c.cx(1, 3);
    const InteractionModel im(c);
    EXPECT_EQ(im.sharedNeighbors(0, 1), 2); // both touch 2 and 3
    EXPECT_EQ(im.sharedNeighbors(2, 3), 2);
}

} // namespace
} // namespace qompress
