/**
 * @file
 * Determinism suite for the thread-pool layer (ctest label "threads"):
 *
 *  - ThreadPool contract: full index coverage, stable lane ids,
 *    first-exception propagation, reuse after failure, nested-call
 *    inlining.
 *  - Exhaustive strategy: 1, 2, and 8 lanes produce bit-identical
 *    compiled circuits to the serial search on ring, grid, and
 *    heavy-hex topologies over seeded circuits.
 *  - Sharded Statevector::applyUnitary: amplitudes match the serial
 *    kernels exactly (==, not a tolerance) both above and below the
 *    sharding threshold, and match the naive reference to 1e-12.
 *  - Eval sweep: runSweep records are bit-identical at 1/2/8 lanes,
 *    on default grid devices and on heavyHex65.
 *  - Portfolio: winner, lastWinner(), and the full compiled result
 *    are identical at 1/2/8 lanes on ring, grid, and heavy-hex.
 *  - GRAPE: objective, fidelity, leakage, and every gradient entry
 *    are bit-identical at 1/2/8 lanes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "bench_util.hh"
#include "circuits/bv.hh"
#include "circuits/graphs.hh"
#include "circuits/qaoa.hh"
#include "common/thread_pool.hh"
#include "eval/sweep.hh"
#include "pulse/grape.hh"
#include "pulse/targets.hh"
#include "strategies/portfolio.hh"
#include "strategies/strategy.hh"

namespace qompress {
namespace {

// ------------------------------------------------------------- pool

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    ASSERT_EQ(pool.numThreads(), 4);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    std::atomic<bool> lane_ok{true};
    pool.parallelFor(0, kN, [&](std::size_t i, int lane) {
        if (lane < 0 || lane >= 4)
            lane_ok = false;
        hits[i].fetch_add(1);
    });
    EXPECT_TRUE(lane_ok);
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SubmitDeliversResultsAndExceptions)
{
    ThreadPool pool(3);
    auto ok = pool.submit([] { return 42; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 42);
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesFirstExceptionAndSurvives)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 100,
                         [](std::size_t i, int) {
                             if (i == 37)
                                 throw std::runtime_error("index 37");
                         }),
        std::runtime_error);

    // The pool must stay fully usable after a failed sweep.
    std::atomic<int> sum{0};
    pool.parallelFor(0, 10, [&](std::size_t i, int) {
        sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(4);
    std::atomic<int> total{0};
    pool.parallelFor(0, 8, [&](std::size_t, int) {
        // From a lane, a nested sweep must run inline (lane 0) rather
        // than deadlocking on the same pool.
        pool.parallelFor(0, 4, [&](std::size_t, int lane) {
            EXPECT_EQ(lane, 0);
            total.fetch_add(1);
        });
    });
    EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, SingleLanePoolRunsEverythingInline)
{
    ThreadPool pool(1);
    int count = 0; // deliberately unsynchronized: must stay caller-only
    pool.parallelFor(0, 100, [&](std::size_t, int lane) {
        EXPECT_EQ(lane, 0);
        ++count;
    });
    EXPECT_EQ(count, 100);
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

// ---------------------------------------------- exhaustive determinism

void
expectIdenticalCompiles(const CompileResult &a, const CompileResult &b,
                        const std::string &ctx)
{
    ASSERT_EQ(a.compressions.size(), b.compressions.size()) << ctx;
    for (std::size_t i = 0; i < a.compressions.size(); ++i)
        EXPECT_TRUE(a.compressions[i] == b.compressions[i])
            << ctx << " pair " << i;

    ASSERT_EQ(a.compiled.numGates(), b.compiled.numGates()) << ctx;
    for (int i = 0; i < a.compiled.numGates(); ++i) {
        const PhysGate &x = a.compiled.gates()[i];
        const PhysGate &y = b.compiled.gates()[i];
        EXPECT_EQ(x.cls, y.cls) << ctx << " gate " << i;
        EXPECT_EQ(x.slots, y.slots) << ctx << " gate " << i;
        EXPECT_EQ(x.logical, y.logical) << ctx << " gate " << i;
        EXPECT_EQ(x.param, y.param) << ctx << " gate " << i;
        EXPECT_EQ(x.isRouting, y.isRouting) << ctx << " gate " << i;
        EXPECT_EQ(x.sourceGate, y.sourceGate) << ctx << " gate " << i;
        EXPECT_EQ(x.start, y.start) << ctx << " gate " << i;
    }
    for (QubitId q = 0; q < a.compiled.finalLayout().numQubits(); ++q)
        EXPECT_EQ(a.compiled.finalLayout().slotOf(q),
                  b.compiled.finalLayout().slotOf(q))
            << ctx << " qubit " << q;

    EXPECT_EQ(a.metrics.gateEps, b.metrics.gateEps) << ctx;
    EXPECT_EQ(a.metrics.totalEps, b.metrics.totalEps) << ctx;
    EXPECT_EQ(a.metrics.durationNs, b.metrics.durationNs) << ctx;
}

/** Serial (threads=1) vs 2- and 8-lane exhaustive compiles. */
void
expectLaneCountInvariant(const Circuit &circuit, const Topology &topo)
{
    const GateLibrary lib;
    CompilerConfig cfg;
    cfg.lookaheadWeight = 0.5;

    cfg.threads = 1;
    const CompileResult serial =
        makeStrategy("ec")->compile(circuit, topo, lib, cfg);
    for (int lanes : {2, 8}) {
        cfg.threads = lanes;
        const CompileResult pooled =
            makeStrategy("ec")->compile(circuit, topo, lib, cfg);
        expectIdenticalCompiles(serial, pooled,
                                circuit.name() + " / " + topo.name() +
                                    " / " + std::to_string(lanes) +
                                    " lanes");
    }
}

TEST(ExhaustiveDeterminism, RingSeeds)
{
    const Topology topo = Topology::ring(8);
    expectLaneCountInvariant(bernsteinVazirani(6), topo);
    expectLaneCountInvariant(qaoaFromGraph(randomGraph(6, 0.5, 3)), topo);
}

TEST(ExhaustiveDeterminism, GridSeeds)
{
    const Topology topo = Topology::grid(6);
    expectLaneCountInvariant(bernsteinVazirani(6), topo);
    expectLaneCountInvariant(qaoaFromGraph(randomGraph(6, 0.5, 13)), topo);
}

TEST(ExhaustiveDeterminism, HeavyHex65Seeds)
{
    const Topology topo = Topology::heavyHex65();
    expectLaneCountInvariant(qaoaFromGraph(randomGraph(6, 0.4, 7)), topo);
}

TEST(ExhaustiveDeterminism, UnorderedVariantToo)
{
    const GateLibrary lib;
    const Circuit bv = bernsteinVazirani(6);
    const Topology topo = Topology::grid(6);
    CompilerConfig cfg;
    cfg.threads = 1;
    const CompileResult serial =
        makeStrategy("ec_unordered")->compile(bv, topo, lib, cfg);
    cfg.threads = 4;
    const CompileResult pooled =
        makeStrategy("ec_unordered")->compile(bv, topo, lib, cfg);
    expectIdenticalCompiles(serial, pooled, "ec_unordered / grid6");
}

// ------------------------------------------------ sweep determinism

void
expectIdenticalRecords(const std::vector<SweepRecord> &a,
                       const std::vector<SweepRecord> &b,
                       const std::string &ctx)
{
    ASSERT_EQ(a.size(), b.size()) << ctx;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const SweepRecord &x = a[i];
        const SweepRecord &y = b[i];
        EXPECT_EQ(x.family, y.family) << ctx << " record " << i;
        EXPECT_EQ(x.strategy, y.strategy) << ctx << " record " << i;
        EXPECT_EQ(x.requestedSize, y.requestedSize)
            << ctx << " record " << i;
        EXPECT_EQ(x.qubits, y.qubits) << ctx << " record " << i;
        EXPECT_EQ(x.numCompressions, y.numCompressions)
            << ctx << " record " << i;
        EXPECT_EQ(x.metrics.gateEps, y.metrics.gateEps)
            << ctx << " record " << i;
        EXPECT_EQ(x.metrics.coherenceEps, y.metrics.coherenceEps)
            << ctx << " record " << i;
        EXPECT_EQ(x.metrics.totalEps, y.metrics.totalEps)
            << ctx << " record " << i;
        EXPECT_EQ(x.metrics.durationNs, y.metrics.durationNs)
            << ctx << " record " << i;
        EXPECT_EQ(x.metrics.numGates, y.metrics.numGates)
            << ctx << " record " << i;
    }
}

void
expectSweepLaneInvariant(SweepSpec spec, const std::string &ctx)
{
    spec.threads = 1;
    const auto serial = runSweep(spec);
    ASSERT_FALSE(serial.empty()) << ctx;
    for (int lanes : {2, 8}) {
        spec.threads = lanes;
        expectIdenticalRecords(serial, runSweep(spec),
                               ctx + " / " + std::to_string(lanes) +
                                   " lanes");
    }
}

TEST(SweepDeterminism, GridDevices)
{
    SweepSpec spec;
    spec.families = {"bv", "qaoa_random"};
    spec.sizes = {6, 9};
    spec.strategies = {"qubit_only", "eqm", "rb", "awe", "pp"};
    spec.config.lookaheadWeight = 0.5;
    expectSweepLaneInvariant(spec, "grid sweep");
}

TEST(SweepDeterminism, RingDevices)
{
    SweepSpec spec;
    spec.families = {"bv"};
    spec.sizes = {6, 8};
    spec.strategies = {"qubit_only", "awe", "pp", "ec"};
    spec.device = [](const Circuit &c) {
        return Topology::ring(c.numQubits());
    };
    expectSweepLaneInvariant(spec, "ring sweep");
}

TEST(SweepDeterminism, HeavyHex65Devices)
{
    SweepSpec spec;
    spec.families = {"qaoa_random"};
    spec.sizes = {8};
    // "ec" nests the exhaustive fan-out inside sweep workers and
    // "portfolio" nests member fan-out: both must degrade to inline
    // execution and stay bit-identical.
    spec.strategies = {"qubit_only", "awe", "pp", "portfolio"};
    spec.device = [](const Circuit &) {
        return Topology::heavyHex65();
    };
    expectSweepLaneInvariant(spec, "heavyHex65 sweep");
}

TEST(SweepDeterminism, NonFittingCellsStayInvariant)
{
    // Over-capacity members record qubits = 0; the slot layout must
    // be stable across lane counts even with failing cells mixed in.
    SweepSpec spec;
    spec.families = {"cuccaro"};
    spec.sizes = {12};
    spec.strategies = {"qubit_only", "eqm"};
    spec.device = [](const Circuit &c) {
        return Topology::grid((c.numQubits() + 1) / 2);
    };
    expectSweepLaneInvariant(spec, "non-fitting sweep");
}

// --------------------------------------------- portfolio determinism

void
expectPortfolioLaneInvariant(const Circuit &circuit,
                             const Topology &topo)
{
    const GateLibrary lib;
    CompilerConfig cfg;
    cfg.lookaheadWeight = 0.5;

    const PortfolioStrategy portfolio;
    cfg.threads = 1;
    const CompileResult serial =
        portfolio.compile(circuit, topo, lib, cfg);
    const std::string serial_winner = portfolio.lastWinner();
    EXPECT_FALSE(serial_winner.empty());

    for (int lanes : {2, 8}) {
        cfg.threads = lanes;
        const CompileResult pooled =
            portfolio.compile(circuit, topo, lib, cfg);
        const std::string ctx = circuit.name() + " / " + topo.name() +
                                " / " + std::to_string(lanes) +
                                " lanes";
        EXPECT_EQ(portfolio.lastWinner(), serial_winner) << ctx;
        expectIdenticalCompiles(serial, pooled, ctx);
    }
}

TEST(PortfolioDeterminism, Ring)
{
    expectPortfolioLaneInvariant(bernsteinVazirani(6),
                                 Topology::ring(8));
}

TEST(PortfolioDeterminism, Grid)
{
    expectPortfolioLaneInvariant(
        qaoaFromGraph(randomGraph(6, 0.5, 21)), Topology::grid(6));
}

TEST(PortfolioDeterminism, HeavyHex65)
{
    expectPortfolioLaneInvariant(
        qaoaFromGraph(randomGraph(6, 0.4, 9)), Topology::heavyHex65());
}

TEST(PortfolioDeterminism, SkipsOverCapacityMembersAtAnyLaneCount)
{
    // 8 qubits on 4 units: qubit_only cannot fit; the skip (and the
    // winner among the rest) must be lane-count-invariant.
    expectPortfolioLaneInvariant(bernsteinVazirani(8),
                                 Topology::grid(4));
}

// ------------------------------------------------- GRAPE determinism

TEST(GrapeDeterminism, GradientBitIdenticalAcrossLaneCounts)
{
    std::vector<int> dims;
    const CMatrix target = namedTarget("CX2", dims);
    const TransmonSystem system(dims, /*guard_levels=*/1);

    std::vector<std::vector<double>> controls;
    std::vector<std::vector<double>> grad_serial, grad;
    double j_serial = 0.0, f_serial = 0.0, l_serial = 0.0;
    {
        GrapeOptions opts;
        opts.threads = 1;
        GrapeOptimizer grape(system, target, 80.0, 16, opts);
        Rng rng(41);
        controls.assign(grape.numControls(),
                        std::vector<double>(grape.segments(), 0.0));
        const double amp = 0.3 * system.maxAmplitude();
        for (auto &row : controls)
            for (auto &v : row)
                v = rng.nextDouble(-amp, amp);
        GrapeWorkspace ws;
        j_serial = grape.objectiveAndGradient(controls, grad_serial,
                                              f_serial, l_serial, ws);
    }

    for (int lanes : {2, 8}) {
        GrapeOptions opts;
        opts.threads = lanes;
        GrapeOptimizer grape(system, target, 80.0, 16, opts);
        GrapeWorkspace ws;
        double fid = 0.0, leak = 0.0;
        // Two calls: the second exercises the fully warm path, which
        // must agree just as exactly.
        grape.objectiveAndGradient(controls, grad, fid, leak, ws);
        const double j =
            grape.objectiveAndGradient(controls, grad, fid, leak, ws);
        EXPECT_EQ(j, j_serial) << lanes << " lanes";
        EXPECT_EQ(fid, f_serial) << lanes << " lanes";
        EXPECT_EQ(leak, l_serial) << lanes << " lanes";
        ASSERT_EQ(grad.size(), grad_serial.size()) << lanes;
        for (std::size_t k = 0; k < grad.size(); ++k) {
            ASSERT_EQ(grad[k].size(), grad_serial[k].size());
            for (std::size_t s = 0; s < grad[k].size(); ++s)
                EXPECT_EQ(grad[k][s], grad_serial[k][s])
                    << lanes << " lanes, control " << k << " segment "
                    << s;
        }
    }
}

TEST(GrapeDeterminism, RunConvergesIdenticallyPooled)
{
    // A short end-to-end run (Adam steps on top of the pooled
    // gradient) must trace the identical optimization path.
    std::vector<int> dims;
    const CMatrix target = namedTarget("X", dims);
    const TransmonSystem system(dims, /*guard_levels=*/1);
    GrapeOptions opts;
    opts.maxIterations = 8;
    opts.threads = 1;
    const GrapeResult serial =
        GrapeOptimizer(system, target, 24.0, 12, opts).run();
    opts.threads = 4;
    const GrapeResult pooled =
        GrapeOptimizer(system, target, 24.0, 12, opts).run();
    EXPECT_EQ(serial.fidelity, pooled.fidelity);
    EXPECT_EQ(serial.leakage, pooled.leakage);
    EXPECT_EQ(serial.iterations, pooled.iterations);
    ASSERT_EQ(serial.controls.size(), pooled.controls.size());
    for (std::size_t k = 0; k < serial.controls.size(); ++k)
        EXPECT_EQ(serial.controls[k], pooled.controls[k]);
}

// ------------------------------------------------- sharded statevector

/** RAII restore of the process-wide sharding knobs. */
struct ShardKnobs
{
    std::size_t saved = MixedRadixState::shardThreshold();
    ~ShardKnobs()
    {
        MixedRadixState::setShardThreshold(saved);
        MixedRadixState::setShardPool(nullptr);
    }
};

/** Apply a mixed 1-/2-/3-qudit workload to copies of one random state
 *  with sharding forced on vs off; demand exact amplitude identity. */
void
expectShardedMatchesSerial(const std::vector<int> &dims, ThreadPool &pool)
{
    Rng rng(2024);
    MixedRadixState init = bench::randomState(dims, rng);

    auto gates = bench::mixedGateWorkload(dims, rng);
    // A three-qudit gate exercises the general gather/scatter kernel.
    const std::size_t k3 =
        static_cast<std::size_t>(dims[0]) * dims[1] * dims[2];
    gates.push_back({{0, 1, 2}, bench::randomUnitary(k3, rng)});

    ShardKnobs restore;
    MixedRadixState::setShardPool(&pool);

    MixedRadixState sharded = init;
    MixedRadixState::setShardThreshold(1); // every call shards
    for (const auto &g : gates)
        sharded.applyUnitary(g.units, g.u);

    MixedRadixState serial = init;
    MixedRadixState::setShardThreshold(~std::size_t(0)); // never shards
    for (const auto &g : gates)
        serial.applyUnitary(g.units, g.u);

    MixedRadixState naive = init;
    for (const auto &g : gates)
        naive.applyUnitaryNaive(g.units, g.u);

    ASSERT_EQ(sharded.size(), serial.size());
    for (std::size_t i = 0; i < sharded.size(); ++i) {
        EXPECT_EQ(sharded.amp(i).real(), serial.amp(i).real()) << i;
        EXPECT_EQ(sharded.amp(i).imag(), serial.amp(i).imag()) << i;
    }
    EXPECT_LE(bench::maxAmpDiff(sharded, naive), 1e-12);
}

TEST(ShardedStatevector, MatchesSerialAboveThreshold)
{
    ThreadPool pool(4);
    // 4*2*4*2*4*2*2*2 = 2048 amplitudes: comfortably above the forced
    // threshold of 1, sharded on every gate.
    expectShardedMatchesSerial({4, 2, 4, 2, 4, 2, 2, 2}, pool);
}

TEST(ShardedStatevector, MatchesSerialOnSmallStates)
{
    ThreadPool pool(8);
    // 4*2*2 = 16 amplitudes: block counts fall below lanes*4 for the
    // larger gates, exercising the serial fallback inside the
    // threshold-on path.
    expectShardedMatchesSerial({4, 2, 2}, pool);
}

TEST(ShardedStatevector, DefaultThresholdKeepsTypicalStatesSerial)
{
    // The default threshold (2^18) must leave the 10-qudit workloads
    // used across the test suite on the serial kernels.
    EXPECT_EQ(MixedRadixState::shardThreshold(), std::size_t(1) << 18);
    std::size_t amps = 1;
    for (int d : {4, 2, 4, 2, 4, 2, 4, 2, 4, 2})
        amps *= static_cast<std::size_t>(d);
    EXPECT_LT(amps, MixedRadixState::shardThreshold());
}

} // namespace
} // namespace qompress
