/**
 * @file
 * Determinism suite for the thread-pool layer (ctest label "threads"):
 *
 *  - ThreadPool contract: full index coverage, stable lane ids,
 *    first-exception propagation, reuse after failure, nested-call
 *    inlining.
 *  - Exhaustive strategy: 1, 2, and 8 lanes produce bit-identical
 *    compiled circuits to the serial search on ring, grid, and
 *    heavy-hex topologies over seeded circuits.
 *  - Sharded Statevector::applyUnitary: amplitudes match the serial
 *    kernels exactly (==, not a tolerance) both above and below the
 *    sharding threshold, and match the naive reference to 1e-12.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "bench_util.hh"
#include "circuits/bv.hh"
#include "circuits/graphs.hh"
#include "circuits/qaoa.hh"
#include "common/thread_pool.hh"
#include "strategies/strategy.hh"

namespace qompress {
namespace {

// ------------------------------------------------------------- pool

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    ASSERT_EQ(pool.numThreads(), 4);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    std::atomic<bool> lane_ok{true};
    pool.parallelFor(0, kN, [&](std::size_t i, int lane) {
        if (lane < 0 || lane >= 4)
            lane_ok = false;
        hits[i].fetch_add(1);
    });
    EXPECT_TRUE(lane_ok);
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SubmitDeliversResultsAndExceptions)
{
    ThreadPool pool(3);
    auto ok = pool.submit([] { return 42; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 42);
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesFirstExceptionAndSurvives)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 100,
                         [](std::size_t i, int) {
                             if (i == 37)
                                 throw std::runtime_error("index 37");
                         }),
        std::runtime_error);

    // The pool must stay fully usable after a failed sweep.
    std::atomic<int> sum{0};
    pool.parallelFor(0, 10, [&](std::size_t i, int) {
        sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(4);
    std::atomic<int> total{0};
    pool.parallelFor(0, 8, [&](std::size_t, int) {
        // From a lane, a nested sweep must run inline (lane 0) rather
        // than deadlocking on the same pool.
        pool.parallelFor(0, 4, [&](std::size_t, int lane) {
            EXPECT_EQ(lane, 0);
            total.fetch_add(1);
        });
    });
    EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, SingleLanePoolRunsEverythingInline)
{
    ThreadPool pool(1);
    int count = 0; // deliberately unsynchronized: must stay caller-only
    pool.parallelFor(0, 100, [&](std::size_t, int lane) {
        EXPECT_EQ(lane, 0);
        ++count;
    });
    EXPECT_EQ(count, 100);
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

// ---------------------------------------------- exhaustive determinism

void
expectIdenticalCompiles(const CompileResult &a, const CompileResult &b,
                        const std::string &ctx)
{
    ASSERT_EQ(a.compressions.size(), b.compressions.size()) << ctx;
    for (std::size_t i = 0; i < a.compressions.size(); ++i)
        EXPECT_TRUE(a.compressions[i] == b.compressions[i])
            << ctx << " pair " << i;

    ASSERT_EQ(a.compiled.numGates(), b.compiled.numGates()) << ctx;
    for (int i = 0; i < a.compiled.numGates(); ++i) {
        const PhysGate &x = a.compiled.gates()[i];
        const PhysGate &y = b.compiled.gates()[i];
        EXPECT_EQ(x.cls, y.cls) << ctx << " gate " << i;
        EXPECT_EQ(x.slots, y.slots) << ctx << " gate " << i;
        EXPECT_EQ(x.logical, y.logical) << ctx << " gate " << i;
        EXPECT_EQ(x.param, y.param) << ctx << " gate " << i;
        EXPECT_EQ(x.isRouting, y.isRouting) << ctx << " gate " << i;
        EXPECT_EQ(x.sourceGate, y.sourceGate) << ctx << " gate " << i;
        EXPECT_EQ(x.start, y.start) << ctx << " gate " << i;
    }
    for (QubitId q = 0; q < a.compiled.finalLayout().numQubits(); ++q)
        EXPECT_EQ(a.compiled.finalLayout().slotOf(q),
                  b.compiled.finalLayout().slotOf(q))
            << ctx << " qubit " << q;

    EXPECT_EQ(a.metrics.gateEps, b.metrics.gateEps) << ctx;
    EXPECT_EQ(a.metrics.totalEps, b.metrics.totalEps) << ctx;
    EXPECT_EQ(a.metrics.durationNs, b.metrics.durationNs) << ctx;
}

/** Serial (threads=1) vs 2- and 8-lane exhaustive compiles. */
void
expectLaneCountInvariant(const Circuit &circuit, const Topology &topo)
{
    const GateLibrary lib;
    CompilerConfig cfg;
    cfg.lookaheadWeight = 0.5;

    cfg.threads = 1;
    const CompileResult serial =
        makeStrategy("ec")->compile(circuit, topo, lib, cfg);
    for (int lanes : {2, 8}) {
        cfg.threads = lanes;
        const CompileResult pooled =
            makeStrategy("ec")->compile(circuit, topo, lib, cfg);
        expectIdenticalCompiles(serial, pooled,
                                circuit.name() + " / " + topo.name() +
                                    " / " + std::to_string(lanes) +
                                    " lanes");
    }
}

TEST(ExhaustiveDeterminism, RingSeeds)
{
    const Topology topo = Topology::ring(8);
    expectLaneCountInvariant(bernsteinVazirani(6), topo);
    expectLaneCountInvariant(qaoaFromGraph(randomGraph(6, 0.5, 3)), topo);
}

TEST(ExhaustiveDeterminism, GridSeeds)
{
    const Topology topo = Topology::grid(6);
    expectLaneCountInvariant(bernsteinVazirani(6), topo);
    expectLaneCountInvariant(qaoaFromGraph(randomGraph(6, 0.5, 13)), topo);
}

TEST(ExhaustiveDeterminism, HeavyHex65Seeds)
{
    const Topology topo = Topology::heavyHex65();
    expectLaneCountInvariant(qaoaFromGraph(randomGraph(6, 0.4, 7)), topo);
}

TEST(ExhaustiveDeterminism, UnorderedVariantToo)
{
    const GateLibrary lib;
    const Circuit bv = bernsteinVazirani(6);
    const Topology topo = Topology::grid(6);
    CompilerConfig cfg;
    cfg.threads = 1;
    const CompileResult serial =
        makeStrategy("ec_unordered")->compile(bv, topo, lib, cfg);
    cfg.threads = 4;
    const CompileResult pooled =
        makeStrategy("ec_unordered")->compile(bv, topo, lib, cfg);
    expectIdenticalCompiles(serial, pooled, "ec_unordered / grid6");
}

// ------------------------------------------------- sharded statevector

/** RAII restore of the process-wide sharding knobs. */
struct ShardKnobs
{
    std::size_t saved = MixedRadixState::shardThreshold();
    ~ShardKnobs()
    {
        MixedRadixState::setShardThreshold(saved);
        MixedRadixState::setShardPool(nullptr);
    }
};

/** Apply a mixed 1-/2-/3-qudit workload to copies of one random state
 *  with sharding forced on vs off; demand exact amplitude identity. */
void
expectShardedMatchesSerial(const std::vector<int> &dims, ThreadPool &pool)
{
    Rng rng(2024);
    MixedRadixState init = bench::randomState(dims, rng);

    auto gates = bench::mixedGateWorkload(dims, rng);
    // A three-qudit gate exercises the general gather/scatter kernel.
    const std::size_t k3 =
        static_cast<std::size_t>(dims[0]) * dims[1] * dims[2];
    gates.push_back({{0, 1, 2}, bench::randomUnitary(k3, rng)});

    ShardKnobs restore;
    MixedRadixState::setShardPool(&pool);

    MixedRadixState sharded = init;
    MixedRadixState::setShardThreshold(1); // every call shards
    for (const auto &g : gates)
        sharded.applyUnitary(g.units, g.u);

    MixedRadixState serial = init;
    MixedRadixState::setShardThreshold(~std::size_t(0)); // never shards
    for (const auto &g : gates)
        serial.applyUnitary(g.units, g.u);

    MixedRadixState naive = init;
    for (const auto &g : gates)
        naive.applyUnitaryNaive(g.units, g.u);

    ASSERT_EQ(sharded.size(), serial.size());
    for (std::size_t i = 0; i < sharded.size(); ++i) {
        EXPECT_EQ(sharded.amp(i).real(), serial.amp(i).real()) << i;
        EXPECT_EQ(sharded.amp(i).imag(), serial.amp(i).imag()) << i;
    }
    EXPECT_LE(bench::maxAmpDiff(sharded, naive), 1e-12);
}

TEST(ShardedStatevector, MatchesSerialAboveThreshold)
{
    ThreadPool pool(4);
    // 4*2*4*2*4*2*2*2 = 2048 amplitudes: comfortably above the forced
    // threshold of 1, sharded on every gate.
    expectShardedMatchesSerial({4, 2, 4, 2, 4, 2, 2, 2}, pool);
}

TEST(ShardedStatevector, MatchesSerialOnSmallStates)
{
    ThreadPool pool(8);
    // 4*2*2 = 16 amplitudes: block counts fall below lanes*4 for the
    // larger gates, exercising the serial fallback inside the
    // threshold-on path.
    expectShardedMatchesSerial({4, 2, 2}, pool);
}

TEST(ShardedStatevector, DefaultThresholdKeepsTypicalStatesSerial)
{
    // The default threshold (2^18) must leave the 10-qudit workloads
    // used across the test suite on the serial kernels.
    EXPECT_EQ(MixedRadixState::shardThreshold(), std::size_t(1) << 18);
    std::size_t amps = 1;
    for (int d : {4, 2, 4, 2, 4, 2, 4, 2, 4, 2})
        amps *= static_cast<std::size_t>(d);
    EXPECT_LT(amps, MixedRadixState::shardThreshold());
}

} // namespace
} // namespace qompress
