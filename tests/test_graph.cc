/**
 * @file
 * Unit tests for the graph container and algorithms.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hh"
#include "graph/algorithms.hh"
#include "graph/graph.hh"

namespace qompress {
namespace {

Graph
triangle()
{
    Graph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0);
    return g;
}

TEST(Graph, AddAndQueryEdges)
{
    Graph g(4);
    EXPECT_TRUE(g.addEdge(0, 1, 2.5));
    EXPECT_FALSE(g.addEdge(1, 0)); // duplicate rejected
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0));
    EXPECT_FALSE(g.hasEdge(0, 2));
    EXPECT_DOUBLE_EQ(g.edgeWeight(1, 0), 2.5);
    EXPECT_EQ(g.numEdges(), 1);
    EXPECT_EQ(g.degree(0), 1);
}

TEST(Graph, SetAndBumpWeights)
{
    Graph g(3);
    g.addEdge(0, 1, 1.0);
    g.setEdgeWeight(0, 1, 4.0);
    EXPECT_DOUBLE_EQ(g.edgeWeight(1, 0), 4.0);
    g.bumpEdgeWeight(0, 1, 0.5);
    EXPECT_DOUBLE_EQ(g.edgeWeight(0, 1), 4.5);
    g.bumpEdgeWeight(1, 2, 3.0); // creates the edge
    EXPECT_DOUBLE_EQ(g.edgeWeight(1, 2), 3.0);
    EXPECT_EQ(g.numEdges(), 2);
}

TEST(Graph, RemoveEdge)
{
    Graph g = triangle();
    EXPECT_TRUE(g.removeEdge(0, 1));
    EXPECT_FALSE(g.removeEdge(0, 1));
    EXPECT_EQ(g.numEdges(), 2);
    EXPECT_FALSE(g.hasEdge(0, 1));
}

TEST(Graph, SelfLoopPanics)
{
    Graph g(2);
    EXPECT_THROW(g.addEdge(1, 1), PanicError);
}

TEST(Graph, EdgesListSortedEndpoints)
{
    Graph g = triangle();
    const auto edges = g.edges();
    EXPECT_EQ(edges.size(), 3u);
    for (const auto &e : edges)
        EXPECT_LT(e.u, e.v);
}

TEST(Graph, ContractMergesNeighborhoods)
{
    // 0-1, 1-2, 0-2, 2-3. Contract 1 into 0: expect 0-2 (weight
    // summed), 2-3, and vertex 1 isolated.
    Graph g(4);
    g.addEdge(0, 1, 1.0);
    g.addEdge(1, 2, 2.0);
    g.addEdge(0, 2, 3.0);
    g.addEdge(2, 3, 1.0);
    g.contract(0, 1);
    EXPECT_EQ(g.degree(1), 0);
    EXPECT_DOUBLE_EQ(g.edgeWeight(0, 2), 5.0);
    EXPECT_TRUE(g.hasEdge(2, 3));
    EXPECT_EQ(g.numEdges(), 2);
}

TEST(Algorithms, BfsDistances)
{
    Graph g(5); // path 0-1-2-3, isolated 4
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    const auto sp = bfs(g, 0);
    EXPECT_DOUBLE_EQ(sp.dist[3], 3.0);
    EXPECT_EQ(sp.dist[4], ShortestPaths::kInf);
    const auto path = sp.pathTo(3);
    const std::vector<int> want{0, 1, 2, 3};
    EXPECT_EQ(path, want);
    EXPECT_TRUE(sp.pathTo(4).empty());
}

TEST(Algorithms, DijkstraPrefersCheapDetour)
{
    Graph g(4);
    g.addEdge(0, 1, 10.0);
    g.addEdge(0, 2, 1.0);
    g.addEdge(2, 3, 1.0);
    g.addEdge(3, 1, 1.0);
    const auto sp = dijkstra(g, 0);
    EXPECT_DOUBLE_EQ(sp.dist[1], 3.0);
    const std::vector<int> want{0, 2, 3, 1};
    EXPECT_EQ(sp.pathTo(1), want);
}

TEST(Algorithms, DijkstraWeightOverride)
{
    Graph g(3);
    g.addEdge(0, 1, 1.0);
    g.addEdge(1, 2, 1.0);
    const auto sp = dijkstra(g, 0, [](int, int, double w) {
        return w * 5.0;
    });
    EXPECT_DOUBLE_EQ(sp.dist[2], 10.0);
}

TEST(Algorithms, ConnectedComponents)
{
    Graph g(5);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    const auto comp = connectedComponents(g);
    EXPECT_EQ(comp[0], comp[1]);
    EXPECT_EQ(comp[2], comp[3]);
    EXPECT_NE(comp[0], comp[2]);
    EXPECT_NE(comp[4], comp[0]);
    EXPECT_NE(comp[4], comp[2]);
}

TEST(Algorithms, ShortestCycleTriangle)
{
    Graph g = triangle();
    for (int v = 0; v < 3; ++v) {
        const auto cyc = shortestCycleThrough(g, v);
        EXPECT_EQ(cyc.size(), 3u);
        EXPECT_EQ(cyc.front(), v);
    }
}

TEST(Algorithms, ShortestCycleSquare)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    g.addEdge(3, 0);
    const auto cyc = shortestCycleThrough(g, 0);
    EXPECT_EQ(cyc.size(), 4u);
}

TEST(Algorithms, NoCycleInTree)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(0, 3);
    for (int v = 0; v < 4; ++v)
        EXPECT_TRUE(shortestCycleThrough(g, v).empty());
}

TEST(Algorithms, CycleThroughVertexIgnoresRemoteCycle)
{
    // Triangle 1-2-3 plus pendant 0-1: vertex 0 lies on no cycle.
    Graph g(4);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    g.addEdge(3, 1);
    g.addEdge(0, 1);
    EXPECT_TRUE(shortestCycleThrough(g, 0).empty());
    EXPECT_EQ(shortestCycleThrough(g, 2).size(), 3u);
}

TEST(Algorithms, ShortestCyclePicksSmallest)
{
    // Vertex 0 on a triangle and a square; expect the triangle.
    Graph g(6);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0);
    g.addEdge(0, 3);
    g.addEdge(3, 4);
    g.addEdge(4, 5);
    g.addEdge(5, 0);
    EXPECT_EQ(shortestCycleThrough(g, 0).size(), 3u);
}

TEST(Algorithms, CycleLengthPerVertex)
{
    Graph g(4); // triangle + pendant
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0);
    g.addEdge(2, 3);
    const auto lens = cycleLengthPerVertex(g);
    EXPECT_EQ(lens[0], 3);
    EXPECT_EQ(lens[1], 3);
    EXPECT_EQ(lens[2], 3);
    EXPECT_EQ(lens[3], 0);
}

} // namespace
} // namespace qompress
