/**
 * @file
 * Tests for the compression strategies (paper section 5) and the two
 * baselines (section 6.2).
 */

#include <gtest/gtest.h>

#include <set>

#include "circuits/arithmetic.hh"
#include "circuits/bv.hh"
#include "circuits/cnu.hh"
#include "circuits/graphs.hh"
#include "circuits/qaoa.hh"
#include "common/error.hh"
#include "ir/passes.hh"
#include "strategies/awe.hh"
#include "strategies/exhaustive.hh"
#include "strategies/full_ququart.hh"
#include "strategies/progressive_pairing.hh"
#include "strategies/ring_based.hh"
#include "strategies/strategy.hh"

namespace qompress {
namespace {

const GateLibrary kLib;
const CompilerConfig kCfg;

void
expectDisjointPairs(const std::vector<Compression> &pairs, int n)
{
    std::set<QubitId> seen;
    for (const auto &p : pairs) {
        EXPECT_NE(p.first, p.second);
        EXPECT_GE(p.first, 0);
        EXPECT_LT(p.first, n);
        EXPECT_GE(p.second, 0);
        EXPECT_LT(p.second, n);
        EXPECT_TRUE(seen.insert(p.first).second);
        EXPECT_TRUE(seen.insert(p.second).second);
    }
}

TEST(Registry, StandardStrategiesAndLookup)
{
    const auto all = standardStrategies();
    ASSERT_EQ(all.size(), 6u);
    EXPECT_EQ(all[0]->name(), "qubit_only");
    EXPECT_EQ(all[1]->name(), "fq");
    EXPECT_EQ(makeStrategy("eqm")->name(), "eqm");
    EXPECT_EQ(makeStrategy("ec")->name(), "ec");
    EXPECT_THROW(makeStrategy("bogus"), FatalError);
}

TEST(QubitOnly, NeverCompresses)
{
    const Circuit c = cuccaroAdder(3);
    const QubitOnlyStrategy s;
    const CompileResult res = s.compile(c, Topology::grid(8), kLib);
    EXPECT_TRUE(res.compressions.empty());
    EXPECT_EQ(res.compiled.initialLayout().numEncodedUnits(), 0);
}

TEST(Eqm, CompressesWhenSpaceIsTight)
{
    const Circuit c = cuccaroAdder(3); // 8 qubits
    const EqmStrategy s;
    // Half-size device: EQM must encode at least 4 pairs.
    const CompileResult res = s.compile(c, Topology::grid(4), kLib);
    EXPECT_GE(static_cast<int>(res.compressions.size()), 4);
}

TEST(RingBased, FindsPairsInCycleHeavyCircuits)
{
    for (const Circuit &c :
         {generalizedToffoli(4), cuccaroAdder(3)}) {
        const RingBasedStrategy s;
        const auto pairs = s.choosePairs(decomposeToNativeGates(c),
                                         Topology::grid(c.numQubits()),
                                         kLib, kCfg);
        EXPECT_FALSE(pairs.empty()) << c.name();
        expectDisjointPairs(pairs, c.numQubits());
    }
}

TEST(RingBased, FindsNothingForBv)
{
    // BV's interaction graph is a star: no cycles, no compressions
    // (exactly the paper's observation).
    const Circuit c = decomposeToNativeGates(bernsteinVazirani(10));
    const RingBasedStrategy s;
    const auto pairs =
        s.choosePairs(c, Topology::grid(10), kLib, kCfg);
    EXPECT_TRUE(pairs.empty());
}

TEST(Awe, PairsAreDisjointAndTerminate)
{
    const Circuit c = decomposeToNativeGates(
        qaoaFromGraph(cylinderGraph(3, 4)));
    const AweStrategy s;
    const auto pairs = s.choosePairs(c, Topology::grid(12), kLib, kCfg);
    expectDisjointPairs(pairs, c.numQubits());
}

TEST(Awe, RaisesAverageEdgeWeight)
{
    const Circuit c = decomposeToNativeGates(
        qaoaFromGraph(cylinderGraph(3, 4)));
    const InteractionModel im(c);
    Graph g = im.graph();
    const double before = g.totalWeight() / g.numEdges();
    const AweStrategy s;
    const auto pairs = s.choosePairs(c, Topology::grid(12), kLib, kCfg);
    if (!pairs.empty()) {
        for (const auto &p : pairs)
            g.contract(p.first, p.second);
        const double after = g.totalWeight() / g.numEdges();
        EXPECT_GT(after, before);
    }
}

TEST(ProgressivePairing, ProducesValidPairs)
{
    const Circuit c = decomposeToNativeGates(cuccaroAdder(3));
    const ProgressivePairingStrategy s;
    const auto pairs =
        s.choosePairs(c, Topology::grid(c.numQubits()), kLib, kCfg);
    expectDisjointPairs(pairs, c.numQubits());
}

TEST(FullQuquart, PairsEveryQubit)
{
    const Circuit c = decomposeToNativeGates(cuccaroAdder(2)); // 6 qb
    const FullQuquartStrategy s;
    const auto pairs =
        s.choosePairs(c, Topology::grid(6), kLib, kCfg);
    EXPECT_EQ(pairs.size(), 3u);
    expectDisjointPairs(pairs, 6);
}

TEST(FullQuquart, OddQubitLeftBare)
{
    Circuit c(5, "odd");
    c.cx(0, 1);
    c.cx(2, 3);
    c.cx(3, 4);
    const FullQuquartStrategy s;
    const auto pairs = s.choosePairs(c, Topology::grid(5), kLib, kCfg);
    EXPECT_EQ(pairs.size(), 2u);
}

TEST(FullQuquart, UsesEncodeDecodeAndSwap4)
{
    // Force external interactions between pairs.
    Circuit c(6, "ext");
    c.cx(0, 1);
    c.cx(2, 3);
    c.cx(4, 5);
    c.cx(1, 2); // external
    c.cx(3, 4); // external
    c.cx(0, 5); // external
    const FullQuquartStrategy s;
    const CompileResult res = s.compile(c, Topology::grid(9), kLib);
    const auto hist = res.compiled.classHistogram();
    EXPECT_GT(hist[static_cast<int>(PhysGateClass::Decode)], 0);
    // Every mid-circuit decode has a matching re-encode; plus one
    // initial encode per pair.
    EXPECT_EQ(hist[static_cast<int>(PhysGateClass::Encode)],
              hist[static_cast<int>(PhysGateClass::Decode)] + 3);
}

TEST(FullQuquart, WorseThanQubitOnlyOnRoutedCircuit)
{
    // The paper's headline observation: FQ loses to qubit-only.
    const Circuit c = cuccaroAdder(4); // 10 qubits
    const Topology topo = Topology::grid(10);
    const auto fq = makeStrategy("fq")->compile(c, topo, kLib);
    const auto qo = makeStrategy("qubit_only")->compile(c, topo, kLib);
    EXPECT_LT(fq.metrics.gateEps, qo.metrics.gateEps);
    EXPECT_LT(fq.metrics.totalEps, qo.metrics.totalEps);
}

TEST(Exhaustive, ImprovesOverQubitOnly)
{
    const Circuit c = generalizedToffoli(3); // 5 qubits, cycle-heavy
    const Topology topo = Topology::grid(5);
    const auto qo = makeStrategy("qubit_only")->compile(c, topo, kLib);
    const auto ec = makeStrategy("ec")->compile(c, topo, kLib);
    // Default metric is gate EPS (the paper's Figure 7 target).
    EXPECT_GE(ec.metrics.gateEps, qo.metrics.gateEps);
}

TEST(Exhaustive, TraceRecordsMonotoneImprovement)
{
    const Circuit c = decomposeToNativeGates(generalizedToffoli(3));
    const ExhaustiveStrategy s(true); // gate-EPS metric
    std::vector<ExhaustiveStep> trace;
    CompilerConfig cfg;
    const auto pairs = s.choosePairsWithTrace(
        c, Topology::grid(5), kLib, cfg, &trace);
    EXPECT_EQ(trace.size(), pairs.size());
    double prev = 0.0;
    for (const auto &step : trace) {
        EXPECT_GT(step.gateEps, prev);
        prev = step.gateEps;
        EXPECT_GE(step.group, 1);
        EXPECT_LE(step.group, 3);
    }
}

TEST(Exhaustive, TotalEpsMetricIsMonotoneInTotalEps)
{
    const Circuit c = decomposeToNativeGates(generalizedToffoli(3));
    const ExhaustiveStrategy s(true, ExhaustiveMetric::TotalEps);
    std::vector<ExhaustiveStep> trace;
    CompilerConfig cfg;
    s.choosePairsWithTrace(c, Topology::grid(5), kLib, cfg, &trace);
    double prev = 0.0;
    for (const auto &step : trace) {
        EXPECT_GT(step.totalEps, prev);
        prev = step.totalEps;
    }
}

TEST(Exhaustive, TotalEpsMetricAcceptsFewerPairs)
{
    // At the worst-case 1:3 T1 ratio the coherence veto can only
    // reduce the accepted compression set (paper Figure 12 logic).
    const Circuit c = decomposeToNativeGates(generalizedToffoli(4));
    CompilerConfig cfg;
    const ExhaustiveStrategy gate(true, ExhaustiveMetric::GateEps);
    const ExhaustiveStrategy total(true, ExhaustiveMetric::TotalEps);
    const auto pg =
        gate.choosePairs(c, Topology::grid(7), kLib, cfg);
    const auto pt =
        total.choosePairs(c, Topology::grid(7), kLib, cfg);
    EXPECT_LE(pt.size(), pg.size());
}

TEST(Exhaustive, UnorderedUsesSingleGroup)
{
    const Circuit c = decomposeToNativeGates(generalizedToffoli(3));
    const ExhaustiveStrategy s(false);
    std::vector<ExhaustiveStep> trace;
    CompilerConfig cfg;
    s.choosePairsWithTrace(c, Topology::grid(5), kLib, cfg, &trace);
    for (const auto &step : trace)
        EXPECT_EQ(step.group, 0);
}

TEST(Strategies, EqmBeatsQubitOnlyOnCnu)
{
    // The paper's strongest result: EQM gains >50% gate EPS on CNU.
    const Circuit c = generalizedToffoli(6); // 11 qubits
    const Topology topo = Topology::grid(11);
    const auto qo = makeStrategy("qubit_only")->compile(c, topo, kLib);
    const auto eqm = makeStrategy("eqm")->compile(c, topo, kLib);
    EXPECT_GT(eqm.metrics.gateEps, qo.metrics.gateEps);
}

TEST(Strategies, AllStandardCompileCnuAndValidate)
{
    const Circuit c = generalizedToffoli(4); // 7 qubits
    const Topology topo = Topology::grid(7);
    for (const auto &s : standardStrategies()) {
        const CompileResult res = s->compile(c, topo, kLib);
        EXPECT_GT(res.metrics.totalEps, 0.0) << s->name();
        EXPECT_GT(res.metrics.durationNs, 0.0) << s->name();
        validateCompiled(res.compiled, topo);
    }
}

} // namespace
} // namespace qompress
