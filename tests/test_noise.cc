/**
 * @file
 * Monte-Carlo cross-validation of the analytic EPS model: the
 * trajectory sampler (independent bookkeeping) must agree with
 * computeMetrics() within statistical error, including FQ's
 * mid-circuit encode/decode occupancy changes.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/arithmetic.hh"
#include "circuits/cnu.hh"
#include "common/error.hh"
#include "sim/noise.hh"
#include "strategies/strategy.hh"

namespace qompress {
namespace {

const GateLibrary kLib;

void
expectAgreement(const CompileResult &res, const GateLibrary &lib,
                const char *label)
{
    NoiseSimOptions opts;
    opts.trials = 40000;
    const NoiseSimResult sim = sampleEps(res.compiled, lib, opts);
    const double analytic = res.metrics.totalEps;
    EXPECT_NEAR(sim.empiricalEps, analytic,
                5.0 * sim.standardError + 1e-3)
        << label << ": analytic " << analytic << " vs empirical "
        << sim.empiricalEps << " +- " << sim.standardError;
}

TEST(NoiseSim, MatchesAnalyticQubitOnly)
{
    const Circuit c = cuccaroAdder(3);
    const auto res = makeStrategy("qubit_only")
                         ->compile(c, Topology::grid(8), kLib);
    expectAgreement(res, kLib, "qubit_only");
}

TEST(NoiseSim, MatchesAnalyticEqm)
{
    const Circuit c = cuccaroAdder(3);
    const auto res =
        makeStrategy("eqm")->compile(c, Topology::grid(8), kLib);
    expectAgreement(res, kLib, "eqm");
}

TEST(NoiseSim, MatchesAnalyticFqWithEncodeDecode)
{
    // FQ exercises the occupancy-change path (ENC/DEC mid-circuit).
    Circuit c(6, "fq_noise");
    c.cx(0, 1);
    c.cx(2, 3);
    c.cx(1, 2);
    c.cx(3, 4);
    c.cx(4, 5);
    const auto res =
        makeStrategy("fq")->compile(c, Topology::grid(9), kLib);
    expectAgreement(res, kLib, "fq");
}

TEST(NoiseSim, MatchesWithScaledT1)
{
    GateLibrary lib = kLib;
    lib.setT1(10.0 * lib.t1Qubit(), 10.0 * lib.t1Ququart());
    const Circuit c = generalizedToffoli(4);
    const auto res =
        makeStrategy("rb")->compile(c, Topology::grid(7), lib);
    expectAgreement(res, lib, "rb_scaled_t1");
}

TEST(NoiseSim, StandardErrorShrinksWithTrials)
{
    const Circuit c = cuccaroAdder(2);
    const auto res =
        makeStrategy("eqm")->compile(c, Topology::grid(6), kLib);
    NoiseSimOptions small;
    small.trials = 1000;
    NoiseSimOptions large;
    large.trials = 16000;
    const auto a = sampleEps(res.compiled, kLib, small);
    const auto b = sampleEps(res.compiled, kLib, large);
    EXPECT_LT(b.standardError, a.standardError);
}

TEST(NoiseSim, DeterministicForSeed)
{
    const Circuit c = cuccaroAdder(2);
    const auto res =
        makeStrategy("eqm")->compile(c, Topology::grid(6), kLib);
    NoiseSimOptions opts;
    opts.trials = 2000;
    opts.seed = 123;
    const auto a = sampleEps(res.compiled, kLib, opts);
    const auto b = sampleEps(res.compiled, kLib, opts);
    EXPECT_DOUBLE_EQ(a.empiricalEps, b.empiricalEps);
}

TEST(NoiseSim, RejectsUnscheduledCircuit)
{
    CompiledCircuit raw(Layout(1, 1), "raw");
    PhysGate g;
    g.cls = PhysGateClass::SqBare;
    g.slots = {0};
    raw.add(g); // never scheduled: zero duration/fidelity
    EXPECT_THROW(sampleEps(raw, kLib), FatalError);
}

} // namespace
} // namespace qompress
