/**
 * @file
 * Tests for the pulse evolution utilities: population traces and
 * pulse CSV import/export.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>

#include "common/error.hh"
#include "pulse/evolution.hh"
#include "pulse/targets.hh"

namespace qompress {
namespace {

TEST(Evolution, ZeroDriveLeavesGroundStateAlone)
{
    const TransmonSystem sys({2}, 1);
    std::vector<int> dims;
    GrapeOptimizer grape(sys, namedTarget("X", dims), 20.0, 10, {});
    const std::vector<std::vector<double>> idle(
        2, std::vector<double>(10, 0.0));
    const auto trace = traceEvolution(sys, grape, idle, /*start=*/0,
                                      {0, 1});
    ASSERT_FALSE(trace.empty());
    for (const auto &s : trace) {
        EXPECT_NEAR(s.populations[0], 1.0, 1e-9);
        EXPECT_NEAR(s.populations[1], 0.0, 1e-9);
        EXPECT_NEAR(s.other, 0.0, 1e-9);
    }
}

TEST(Evolution, ProbabilityIsConserved)
{
    const TransmonSystem sys({4}, 1);
    std::vector<int> dims;
    GrapeOptimizer grape(sys, namedTarget("SWAPin", dims), 40.0, 40, {});
    std::vector<std::vector<double>> controls(
        2, std::vector<double>(40, 0.1));
    const auto trace =
        traceEvolution(sys, grape, controls, /*start=*/1, {0, 1, 2, 3});
    for (const auto &s : trace) {
        const double total = std::accumulate(s.populations.begin(),
                                             s.populations.end(),
                                             s.other);
        EXPECT_NEAR(total, 1.0, 1e-7);
    }
}

TEST(Evolution, TraceCoversTheFullPulse)
{
    const TransmonSystem sys({2}, 1);
    std::vector<int> dims;
    GrapeOptimizer grape(sys, namedTarget("X", dims), 30.0, 12, {});
    const std::vector<std::vector<double>> idle(
        2, std::vector<double>(12, 0.0));
    const auto trace = traceEvolution(sys, grape, idle, 0, {0},
                                      /*samples=*/6);
    EXPECT_NEAR(trace.front().timeNs, 0.0, 1e-12);
    EXPECT_NEAR(trace.back().timeNs, 30.0, 1e-9);
}

TEST(Evolution, RejectsBadStates)
{
    const TransmonSystem sys({2}, 1);
    std::vector<int> dims;
    GrapeOptimizer grape(sys, namedTarget("X", dims), 10.0, 4, {});
    const std::vector<std::vector<double>> idle(
        2, std::vector<double>(4, 0.0));
    EXPECT_THROW(traceEvolution(sys, grape, idle, 7, {0}), FatalError);
    EXPECT_THROW(traceEvolution(sys, grape, idle, 0, {9}), FatalError);
}

TEST(PulseIo, SaveLoadRoundTrip)
{
    const std::string path = "/tmp/qompress_pulse_test.csv";
    const std::vector<std::vector<double>> controls = {
        {0.1, -0.2, 0.3}, {0.05, 0.0, -0.15}};
    saveControls(path, controls, 2.5);
    double dt = 0.0;
    const auto loaded = loadControls(path, dt);
    EXPECT_NEAR(dt, 2.5, 1e-12);
    ASSERT_EQ(loaded.size(), controls.size());
    for (std::size_t k = 0; k < controls.size(); ++k) {
        ASSERT_EQ(loaded[k].size(), controls[k].size());
        for (std::size_t j = 0; j < controls[k].size(); ++j)
            EXPECT_NEAR(loaded[k][j], controls[k][j], 1e-12);
    }
    std::remove(path.c_str());
}

TEST(PulseIo, LoadErrors)
{
    EXPECT_THROW(
        [] {
            double dt;
            loadControls("/nonexistent.pulse", dt);
        }(),
        FatalError);
    const std::string path = "/tmp/qompress_pulse_bad.csv";
    {
        std::ofstream out(path);
        out << "# header\n1.0,nope\n2.0,0.5\n";
    }
    double dt = 0.0;
    EXPECT_THROW(loadControls(path, dt), FatalError);
    std::remove(path.c_str());
}

} // namespace
} // namespace qompress
