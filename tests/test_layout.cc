/**
 * @file
 * Tests for the Layout bidirectional qubit/slot map.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "compiler/layout.hh"

namespace qompress {
namespace {

TEST(Layout, PlaceAndLookup)
{
    Layout l(3, 4);
    EXPECT_EQ(l.numSlots(), 8);
    l.place(0, makeSlot(1, 0));
    EXPECT_EQ(l.slotOf(0), makeSlot(1, 0));
    EXPECT_EQ(l.qubitAt(makeSlot(1, 0)), 0);
    EXPECT_TRUE(l.isMapped(0));
    EXPECT_FALSE(l.isMapped(1));
    EXPECT_EQ(l.numMapped(), 1);
}

TEST(Layout, DoublePlacePanics)
{
    Layout l(2, 2);
    l.place(0, 0);
    EXPECT_THROW(l.place(0, 1), PanicError); // qubit again
    EXPECT_THROW(l.place(1, 0), PanicError); // slot occupied
}

TEST(Layout, RemoveFreesBoth)
{
    Layout l(2, 2);
    l.place(0, 2);
    l.remove(0);
    EXPECT_FALSE(l.isMapped(0));
    EXPECT_FALSE(l.occupied(2));
    EXPECT_THROW(l.remove(0), PanicError);
}

TEST(Layout, SwapSlotsOccupiedPair)
{
    Layout l(2, 2);
    l.place(0, makeSlot(0, 0));
    l.place(1, makeSlot(1, 0));
    l.swapSlots(makeSlot(0, 0), makeSlot(1, 0));
    EXPECT_EQ(l.qubitAt(makeSlot(0, 0)), 1);
    EXPECT_EQ(l.qubitAt(makeSlot(1, 0)), 0);
    EXPECT_EQ(l.slotOf(0), makeSlot(1, 0));
}

TEST(Layout, SwapSlotsWithEmpty)
{
    Layout l(1, 2);
    l.place(0, makeSlot(0, 0));
    l.swapSlots(makeSlot(0, 0), makeSlot(1, 0));
    EXPECT_FALSE(l.occupied(makeSlot(0, 0)));
    EXPECT_EQ(l.slotOf(0), makeSlot(1, 0));
}

TEST(Layout, EncodedStateTracking)
{
    Layout l(4, 3);
    l.place(0, makeSlot(0, 0));
    EXPECT_FALSE(l.unitEncoded(0));
    EXPECT_EQ(l.unitOccupancy(0), 1);
    l.place(1, makeSlot(0, 1));
    EXPECT_TRUE(l.unitEncoded(0));
    EXPECT_EQ(l.unitOccupancy(0), 2);
    l.place(2, makeSlot(2, 0));
    EXPECT_EQ(l.numEncodedUnits(), 1);
}

} // namespace
} // namespace qompress
