/**
 * @file
 * Tests for the Layout bidirectional qubit/slot map, including
 * property tests of the invariants the partial-invalidation distance
 * cache relies on: occupancy bijectivity, costVersion monotonicity,
 * and per-unit epochs that never decrease and never outrun the
 * version.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hh"
#include "common/rng.hh"
#include "compiler/layout.hh"

namespace qompress {
namespace {

TEST(Layout, PlaceAndLookup)
{
    Layout l(3, 4);
    EXPECT_EQ(l.numSlots(), 8);
    l.place(0, makeSlot(1, 0));
    EXPECT_EQ(l.slotOf(0), makeSlot(1, 0));
    EXPECT_EQ(l.qubitAt(makeSlot(1, 0)), 0);
    EXPECT_TRUE(l.isMapped(0));
    EXPECT_FALSE(l.isMapped(1));
    EXPECT_EQ(l.numMapped(), 1);
}

TEST(Layout, DoublePlacePanics)
{
    Layout l(2, 2);
    l.place(0, 0);
    EXPECT_THROW(l.place(0, 1), PanicError); // qubit again
    EXPECT_THROW(l.place(1, 0), PanicError); // slot occupied
}

TEST(Layout, RemoveFreesBoth)
{
    Layout l(2, 2);
    l.place(0, 2);
    l.remove(0);
    EXPECT_FALSE(l.isMapped(0));
    EXPECT_FALSE(l.occupied(2));
    EXPECT_THROW(l.remove(0), PanicError);
}

TEST(Layout, SwapSlotsOccupiedPair)
{
    Layout l(2, 2);
    l.place(0, makeSlot(0, 0));
    l.place(1, makeSlot(1, 0));
    l.swapSlots(makeSlot(0, 0), makeSlot(1, 0));
    EXPECT_EQ(l.qubitAt(makeSlot(0, 0)), 1);
    EXPECT_EQ(l.qubitAt(makeSlot(1, 0)), 0);
    EXPECT_EQ(l.slotOf(0), makeSlot(1, 0));
}

TEST(Layout, SwapSlotsWithEmpty)
{
    Layout l(1, 2);
    l.place(0, makeSlot(0, 0));
    l.swapSlots(makeSlot(0, 0), makeSlot(1, 0));
    EXPECT_FALSE(l.occupied(makeSlot(0, 0)));
    EXPECT_EQ(l.slotOf(0), makeSlot(1, 0));
}

TEST(Layout, EpochAndVersionBasics)
{
    Layout l(4, 3);
    EXPECT_EQ(l.costVersion(), 0u);
    for (UnitId u = 0; u < 3; ++u) {
        EXPECT_EQ(l.unitEpoch(u), 0u);
        EXPECT_EQ(l.unitSignature(u), 0);
    }

    l.place(0, makeSlot(1, 0));
    EXPECT_EQ(l.unitEpoch(1), l.costVersion());
    EXPECT_EQ(l.unitEpoch(0), 0u);
    EXPECT_EQ(l.unitSignature(1), 1);

    l.place(1, makeSlot(1, 1));
    EXPECT_EQ(l.unitSignature(1), 3);

    // Occupied <-> occupied exchange: neither version nor epochs move.
    l.place(2, makeSlot(2, 0));
    const auto v = l.costVersion();
    const auto e1 = l.unitEpoch(1);
    const auto e2 = l.unitEpoch(2);
    l.swapSlots(makeSlot(1, 0), makeSlot(2, 0));
    EXPECT_EQ(l.costVersion(), v);
    EXPECT_EQ(l.unitEpoch(1), e1);
    EXPECT_EQ(l.unitEpoch(2), e2);

    // Occupied <-> empty moves occupancy on BOTH endpoint units.
    l.swapSlots(makeSlot(2, 0), makeSlot(0, 0));
    EXPECT_GT(l.costVersion(), v);
    EXPECT_EQ(l.unitEpoch(2), l.costVersion());
    EXPECT_EQ(l.unitEpoch(0), l.costVersion());
    EXPECT_EQ(l.unitEpoch(1), e1);
}

TEST(Layout, RecordMutationHookBumpsVersionEpochAndNonce)
{
    Layout l(2, 2);
    l.place(0, makeSlot(0, 0));
    // Ordinary occupancy mutations never touch the perturbation nonce.
    EXPECT_EQ(l.unitPerturbNonce(0), 0u);
    const auto v = l.costVersion();
    const auto e_other = l.unitEpoch(1);
    l.recordMutation(makeSlot(0, 1));
    EXPECT_EQ(l.costVersion(), v + 1);
    EXPECT_EQ(l.unitEpoch(0), v + 1);
    EXPECT_EQ(l.unitEpoch(1), e_other);
    EXPECT_EQ(l.unitPerturbNonce(0), 1u);
    EXPECT_EQ(l.unitPerturbNonce(1), 0u);
    // Copies carry the perturbation along with the rest of the state.
    const Layout c = l;
    EXPECT_EQ(c.unitPerturbNonce(0), 1u);
    EXPECT_THROW(l.recordMutation(99), PanicError);
}

TEST(Layout, CopiesGetFreshInstanceIds)
{
    Layout a(2, 2);
    const Layout b = a;
    Layout c;
    c = a;
    EXPECT_NE(a.instanceId(), b.instanceId());
    EXPECT_NE(a.instanceId(), c.instanceId());
    EXPECT_NE(b.instanceId(), c.instanceId());
    // State is still copied faithfully.
    EXPECT_EQ(b.numQubits(), a.numQubits());
    EXPECT_EQ(b.costVersion(), a.costVersion());
}

/**
 * Property test: random mutation sequences preserve the invariants
 * the cache depends on. Mirrors the Layout against a simple shadow
 * model and checks after every step.
 */
TEST(LayoutProperties, InvariantsUnderRandomMutationSequences)
{
    Rng rng(20260725);
    const int kQubits = 10;
    const int kUnits = 8;
    const int kSteps = 2000;

    Layout l(kQubits, kUnits);
    std::vector<SlotId> shadow(kQubits, kInvalid); // qubit -> slot
    std::uint64_t last_version = 0;
    std::vector<std::uint64_t> last_epoch(kUnits, 0);

    auto check = [&]() {
        // Occupancy bijectivity against the shadow model.
        int mapped = 0;
        for (QubitId q = 0; q < kQubits; ++q) {
            ASSERT_EQ(l.slotOf(q), shadow[q]) << "qubit " << q;
            if (shadow[q] != kInvalid) {
                ++mapped;
                ASSERT_EQ(l.qubitAt(shadow[q]), q);
            }
        }
        ASSERT_EQ(l.numMapped(), mapped);
        for (SlotId s = 0; s < l.numSlots(); ++s) {
            const QubitId q = l.qubitAt(s);
            if (q != kInvalid) {
                ASSERT_EQ(shadow[q], s) << "slot " << s;
            }
        }
        // Version monotone; epochs monotone and bounded by it.
        ASSERT_GE(l.costVersion(), last_version);
        last_version = l.costVersion();
        for (UnitId u = 0; u < kUnits; ++u) {
            ASSERT_GE(l.unitEpoch(u), last_epoch[u]) << "unit " << u;
            ASSERT_LE(l.unitEpoch(u), l.costVersion()) << "unit " << u;
            last_epoch[u] = l.unitEpoch(u);
            // Signature consistent with occupancy accessors.
            const int occ = l.unitOccupancy(u);
            const std::uint8_t sig = l.unitSignature(u);
            ASSERT_EQ((sig & 1) + ((sig >> 1) & 1), occ);
            ASSERT_EQ(sig == 3, l.unitEncoded(u));
        }
    };

    check();
    for (int step = 0; step < kSteps; ++step) {
        const int op = rng.nextInt(0, 2);
        if (op == 0) { // place a random unmapped qubit on a free slot
            const QubitId q = rng.nextInt(0, kQubits - 1);
            const SlotId s = rng.nextInt(0, l.numSlots() - 1);
            if (shadow[q] == kInvalid && l.qubitAt(s) == kInvalid) {
                const auto v = l.costVersion();
                l.place(q, s);
                shadow[q] = s;
                ASSERT_EQ(l.costVersion(), v + 1);
                ASSERT_EQ(l.unitEpoch(slotUnit(s)), l.costVersion());
            }
        } else if (op == 1) { // remove a random mapped qubit
            const QubitId q = rng.nextInt(0, kQubits - 1);
            if (shadow[q] != kInvalid) {
                const auto v = l.costVersion();
                const UnitId u = slotUnit(shadow[q]);
                l.remove(q);
                shadow[q] = kInvalid;
                ASSERT_EQ(l.costVersion(), v + 1);
                ASSERT_EQ(l.unitEpoch(u), l.costVersion());
            }
        } else { // swap two random slots (any occupancy combination)
            const SlotId a = rng.nextInt(0, l.numSlots() - 1);
            const SlotId b = rng.nextInt(0, l.numSlots() - 1);
            const QubitId qa = l.qubitAt(a);
            const QubitId qb = l.qubitAt(b);
            const auto v = l.costVersion();
            l.swapSlots(a, b);
            if (qa != kInvalid)
                shadow[qa] = b;
            if (qb != kInvalid)
                shadow[qb] = a;
            // Version bumps exactly when occupancy changed hands.
            if ((qa == kInvalid) != (qb == kInvalid)) {
                ASSERT_EQ(l.costVersion(), v + 1);
                ASSERT_EQ(l.unitEpoch(slotUnit(a)), l.costVersion());
                ASSERT_EQ(l.unitEpoch(slotUnit(b)), l.costVersion());
            } else {
                ASSERT_EQ(l.costVersion(), v);
            }
        }
        check();
    }
}

TEST(Layout, EncodedStateTracking)
{
    Layout l(4, 3);
    l.place(0, makeSlot(0, 0));
    EXPECT_FALSE(l.unitEncoded(0));
    EXPECT_EQ(l.unitOccupancy(0), 1);
    l.place(1, makeSlot(0, 1));
    EXPECT_TRUE(l.unitEncoded(0));
    EXPECT_EQ(l.unitOccupancy(0), 2);
    l.place(2, makeSlot(2, 0));
    EXPECT_EQ(l.numEncodedUnits(), 1);
}

} // namespace
} // namespace qompress
