/**
 * @file
 * Tests for the benchmark circuit generators and graph families.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "circuits/arithmetic.hh"
#include "circuits/bv.hh"
#include "circuits/cnu.hh"
#include "circuits/graphs.hh"
#include "circuits/qaoa.hh"
#include "circuits/qram.hh"
#include "circuits/registry.hh"
#include "common/error.hh"
#include "graph/algorithms.hh"
#include "ir/interaction.hh"

namespace qompress {
namespace {

TEST(Cuccaro, QubitCountAndGateMix)
{
    for (int bits = 1; bits <= 6; ++bits) {
        const Circuit c = cuccaroAdder(bits);
        EXPECT_EQ(c.numQubits(), 2 * bits + 2);
        // MAJ and UMA are 2 CX + 1 CCX each; plus the carry CX.
        EXPECT_EQ(c.countGatesWithArity(3), 2 * bits);
        EXPECT_EQ(c.countGatesWithArity(2), 4 * bits + 1);
    }
}

TEST(Cuccaro, ForSizeFitsBudget)
{
    const Circuit c = cuccaroAdderForSize(25);
    EXPECT_LE(c.numQubits(), 25);
    EXPECT_GE(c.numQubits(), 20);
    EXPECT_THROW(cuccaroAdderForSize(3), FatalError);
}

TEST(Cnu, SmallestIsPlainToffoli)
{
    const Circuit c = generalizedToffoli(2);
    EXPECT_EQ(c.numQubits(), 3);
    EXPECT_EQ(c.numGates(), 1);
    EXPECT_EQ(c.gates()[0].type, GateType::CCX);
}

TEST(Cnu, VChainStructure)
{
    for (int k = 3; k <= 8; ++k) {
        const Circuit c = generalizedToffoli(k);
        EXPECT_EQ(c.numQubits(), 2 * k - 1);
        // Compute cascade (k-2 CCX), one target CCX, uncompute (k-2).
        EXPECT_EQ(c.countGatesWithArity(3), 2 * (k - 2) + 1);
    }
}

TEST(Cnu, InteractionGraphHasTriangles)
{
    const Circuit c = generalizedToffoli(4);
    const InteractionModel im(c);
    // Each CCX forms a triangle; every qubit of the first CCX lies on
    // a 3-cycle.
    const auto cyc = shortestCycleThrough(im.graph(), 0);
    EXPECT_EQ(cyc.size(), 3u);
}

TEST(Qram, SizesAndStructure)
{
    for (int depth = 2; depth <= 4; ++depth) {
        const Circuit c = qram(depth);
        EXPECT_EQ(c.numQubits(), depth + (1 << depth));
        EXPECT_GT(c.numGates(), 0);
    }
    EXPECT_THROW(qram(1), FatalError);
}

TEST(Qram, ForSizeRespectsBudget)
{
    const Circuit c = qramForSize(25);
    EXPECT_LE(c.numQubits(), 25);
    EXPECT_EQ(c.numQubits(), 20); // depth 4
}

TEST(Bv, StarInteractionAroundTarget)
{
    const Circuit c = bernsteinVazirani(8);
    EXPECT_EQ(c.numQubits(), 8);
    const InteractionModel im(c);
    // Every 2q edge touches the target (qubit 7): no cycles anywhere.
    for (const auto &e : im.graph().edges())
        EXPECT_TRUE(e.u == 7 || e.v == 7);
    for (int v = 0; v < 8; ++v)
        EXPECT_TRUE(shortestCycleThrough(im.graph(), v).empty());
}

TEST(Bv, DeterministicPerSeed)
{
    const Circuit a = bernsteinVazirani(10, 5);
    const Circuit b = bernsteinVazirani(10, 5);
    EXPECT_EQ(a.numGates(), b.numGates());
}

TEST(Graphs, RandomGraphConnectedAtTargetDensity)
{
    const Graph g = randomGraph(20, 0.3, 3);
    EXPECT_EQ(g.numVertices(), 20);
    const auto comp = connectedComponents(g);
    EXPECT_TRUE(std::all_of(comp.begin(), comp.end(),
                            [](int c) { return c == 0; }));
    // Density sanity: 30% of 190 possible edges, within slack.
    EXPECT_GT(g.numEdges(), 30);
    EXPECT_LT(g.numEdges(), 90);
}

TEST(Graphs, CylinderNodeAndEdgeCounts)
{
    const Graph g = cylinderGraph(3, 4); // 3 rings of 4
    EXPECT_EQ(g.numVertices(), 12);
    // Ring edges 3*4, inter-ring 2*4.
    EXPECT_EQ(g.numEdges(), 20);
}

TEST(Graphs, TorusIsFourRegular)
{
    const Graph g = torusGraph(4, 4);
    EXPECT_EQ(g.numVertices(), 16);
    EXPECT_EQ(g.numEdges(), 32);
    for (int v = 0; v < 16; ++v)
        EXPECT_EQ(g.degree(v), 4);
}

TEST(Graphs, BinaryWeldedTreeStructure)
{
    const int depth = 3;
    const Graph g = binaryWeldedTree(depth, 1);
    const int per_tree = (1 << (depth + 1)) - 1;
    EXPECT_EQ(g.numVertices(), 2 * per_tree);
    // Leaves have degree 3 (one tree edge + two weld edges); roots 2.
    EXPECT_EQ(g.degree(0), 2);
    EXPECT_EQ(g.degree(per_tree), 2);
    const int first_leaf = (1 << depth) - 1;
    for (int l = first_leaf; l < per_tree; ++l)
        EXPECT_EQ(g.degree(l), 3);
    const auto comp = connectedComponents(g);
    EXPECT_TRUE(std::all_of(comp.begin(), comp.end(),
                            [](int c) { return c == 0; }));
}

TEST(Qaoa, GateCountPerEdge)
{
    const Graph g = cylinderGraph(2, 4);
    QaoaOptions opts;
    const Circuit c = qaoaFromGraph(g, opts);
    EXPECT_EQ(c.numQubits(), g.numVertices());
    // H layer + (CX, RZ, CX) per edge.
    EXPECT_EQ(c.numGates(), g.numVertices() + 3 * g.numEdges());
    EXPECT_EQ(c.numTwoQubitGates(), 2 * g.numEdges());
}

TEST(Qaoa, LayersMultiplyCost)
{
    const Graph g = cylinderGraph(2, 4);
    QaoaOptions opts;
    opts.layers = 2;
    opts.initial_h_layer = false;
    const Circuit c = qaoaFromGraph(g, opts);
    EXPECT_EQ(c.numGates(), 2 * 3 * g.numEdges());
}

TEST(Registry, AllFamiliesProduceValidCircuits)
{
    for (const auto &fam : benchmarkFamilies()) {
        const int size = std::max(fam.minQubits, 16);
        const Circuit c = fam.make(size);
        EXPECT_GT(c.numGates(), 0) << fam.name;
        EXPECT_LE(c.numQubits(), size + 1) << fam.name;
    }
    // The paper's eight families plus qaoa_heavyhex.
    EXPECT_EQ(benchmarkFamilies().size(), 9u);
}

TEST(Registry, LookupByName)
{
    EXPECT_EQ(benchmarkFamily("cuccaro").name, "cuccaro");
    EXPECT_THROW(benchmarkFamily("nope"), FatalError);
}

} // namespace
} // namespace qompress
