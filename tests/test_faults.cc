/**
 * @file
 * The fault-injection wall: proves the persistence/service stack
 * degrades instead of breaking, for every failure the fault points in
 * service/artifact_store.cc can deliver.
 *
 * Four walls:
 *  - FaultPoint semantics: the disarmed hot path is allocation-free,
 *    nth/probability/limit/compose arming behaves as documented, and
 *    misuse (ShortIo of zero bytes, double install) fails loudly.
 *  - Store faults: EINTR is retried transparently, short reads/writes
 *    are completed by the exact-IO loops, torn appends are trimmed,
 *    ENOSPC/EIO fail the one operation cleanly, fsync policies sync
 *    when promised (and a failed required fsync fails the put), and
 *    compact() survives rename/fsync failure with the original log
 *    intact.
 *  - The fault matrix: every fault point x every call index x
 *    open/put/load/compact/restart must end in a false return or a
 *    FatalError -- never a PanicError, a crash, or a store whose
 *    surviving records differ from what was acknowledged.
 *  - The circuit breaker: the disk tier opens after K consecutive
 *    store errors, skips (not retries) while degraded, re-probes
 *    after the cooldown from the read path, recovers, and keeps the
 *    ServiceStats request partition exact throughout -- including
 *    under concurrent traffic with probabilistic faults (the TSan
 *    matrix runs this binary).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "circuits/registry.hh"
#include "common/error.hh"
#include "common/faultpoint.hh"
#include "common/rng.hh"
#include "ir/circuit.hh"
#include "service/artifact_store.hh"
#include "service/compiler_service.hh"

// ------------------------------------------------------------------
// Thread-local allocation counter (same pattern as bench_hotpaths):
// proves the disarmed QFAULT_POINT path performs zero allocations
// without blaming gtest's own allocations on other threads.
// ------------------------------------------------------------------

static thread_local std::uint64_t t_alloc_count = 0;

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void *
operator new(std::size_t size)
{
    ++t_alloc_count;
    void *p = std::malloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    ++t_alloc_count;
    void *p = std::malloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace qompress {
namespace {

using Blob = std::vector<std::uint8_t>;

std::string
tempPath(const char *tag)
{
    const std::string path =
        ::testing::TempDir() + "qompress_faults_" + tag + ".log";
    std::remove(path.c_str());
    return path;
}

ArtifactKey
mkey(std::uint64_t n)
{
    return ArtifactKey{n, n * 31, n * 97, n * 131, "eqm"};
}

/** Deterministic opaque record bytes; the store never interprets
 *  blobs, so byte equality after a fault IS the corruption check. */
Blob
patternBlob(std::uint64_t n)
{
    Blob b(64 + (n % 37));
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<std::uint8_t>((n * 131 + i * 7) & 0xff);
    return b;
}

FaultSpec
failWith(int err, std::uint64_t nth = 0)
{
    FaultSpec f;
    f.kind = FaultKind::Fail;
    f.err = err;
    f.nth = nth;
    return f;
}

// ------------------------------------------------------------------
// FaultPoint semantics
// ------------------------------------------------------------------

TEST(FaultPoint, DisarmedCheckIsAllocationFreeAndNeverFires)
{
    ASSERT_EQ(detail::g_faultInjector.load(), nullptr);
    for (int i = 0; i < 8; ++i)
        (void)QFAULT_POINT("alloc.probe"); // warm any lazy state
    const std::uint64_t before = t_alloc_count;
    bool fired = false;
    for (int i = 0; i < 10000; ++i)
        fired |= QFAULT_POINT("alloc.probe").fired;
    EXPECT_FALSE(fired);
    EXPECT_EQ(t_alloc_count, before)
        << "disarmed fault points must not allocate";
}

TEST(FaultPoint, NthFiresExactlyOnce)
{
    FaultInjector inj;
    inj.arm("p", failWith(EIO, 3));
    ScopedFaultInjection sc(inj);
    for (int call = 1; call <= 6; ++call) {
        const FaultFire f = QFAULT_POINT("p");
        EXPECT_EQ(f.fired, call == 3) << "call " << call;
        if (f.fired) {
            EXPECT_EQ(f.err, EIO);
        }
    }
    EXPECT_EQ(inj.calls("p"), 6u);
    EXPECT_EQ(inj.fires("p"), 1u);
}

TEST(FaultPoint, ProbabilityZeroNeverOneAlwaysAndLimitCaps)
{
    FaultInjector inj(7);
    FaultSpec never = failWith(EIO);
    never.probability = 0.0;
    inj.arm("never", never);
    FaultSpec capped = failWith(ENOSPC);
    capped.limit = 2;
    inj.arm("capped", capped);
    ScopedFaultInjection sc(inj);
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(QFAULT_POINT("never").fired);
    int fires = 0;
    for (int i = 0; i < 50; ++i)
        fires += QFAULT_POINT("capped").fired ? 1 : 0;
    EXPECT_EQ(fires, 2) << "limit must cap total fires";
}

TEST(FaultPoint, EintrKindAlwaysDeliversEintr)
{
    FaultInjector inj;
    FaultSpec f;
    f.kind = FaultKind::Eintr;
    f.err = EIO; // deliberately wrong; Eintr must override it
    f.limit = 1;
    inj.arm("p", f);
    ScopedFaultInjection sc(inj);
    const FaultFire fire = QFAULT_POINT("p");
    ASSERT_TRUE(fire.fired);
    EXPECT_EQ(fire.err, EINTR);
}

TEST(FaultPoint, SpecsComposeIntoTornAppendShape)
{
    // Short write on call 1, hard failure on call 2: the classic torn
    // append, armed as two composed specs on one point.
    FaultInjector inj;
    FaultSpec shortio;
    shortio.kind = FaultKind::ShortIo;
    shortio.bytes = 8;
    shortio.nth = 1;
    inj.arm("p", shortio);
    inj.arm("p", failWith(EIO, 2));
    ScopedFaultInjection sc(inj);
    const FaultFire first = QFAULT_POINT("p");
    ASSERT_TRUE(first.fired);
    EXPECT_EQ(first.kind, FaultKind::ShortIo);
    EXPECT_EQ(first.bytes, 8u);
    const FaultFire second = QFAULT_POINT("p");
    ASSERT_TRUE(second.fired);
    EXPECT_EQ(second.kind, FaultKind::Fail);
    EXPECT_FALSE(QFAULT_POINT("p").fired);
}

TEST(FaultPoint, ShortIoOfZeroBytesIsRejected)
{
    FaultInjector inj;
    FaultSpec f;
    f.kind = FaultKind::ShortIo;
    f.bytes = 0; // would turn exact-IO retry loops into spins
    EXPECT_THROW(inj.arm("p", f), FatalError);
}

TEST(FaultPoint, SecondInstallPanics)
{
    FaultInjector a, b;
    ScopedFaultInjection sc(a);
    EXPECT_THROW(b.install(), PanicError);
}

TEST(FaultPoint, CallsAreCountedWithNothingArmed)
{
    // The discovery knob: an empty injector observing traffic tells
    // the matrix how many syscalls an operation performs.
    FaultInjector inj;
    ScopedFaultInjection sc(inj);
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(QFAULT_POINT("observed").fired);
    EXPECT_EQ(inj.calls("observed"), 5u);
    EXPECT_EQ(inj.fires("observed"), 0u);
    const auto points = inj.touchedPoints();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0], "observed");
}

// ------------------------------------------------------------------
// Store faults: targeted shapes
// ------------------------------------------------------------------

TEST(StoreFaults, EintrIsRetriedNotFailed)
{
    const std::string path = tempPath("eintr");
    StoreOptions so;
    so.fsync = FsyncPolicy::Always;
    FaultInjector inj;
    for (const char *point :
         {"store.open", "store.pread", "store.pwrite", "store.fsync"}) {
        FaultSpec f;
        f.kind = FaultKind::Eintr;
        f.limit = 3; // terminate against the retry loops
        inj.arm(point, f);
    }
    ScopedFaultInjection sc(inj);
    ArtifactStore store(path, so);
    EXPECT_TRUE(store.put(mkey(1), patternBlob(1)));
    Blob out;
    EXPECT_EQ(store.loadStatus(mkey(1), out), StoreStatus::Ok);
    EXPECT_EQ(out, patternBlob(1));
    EXPECT_EQ(store.ioErrors(), 0u)
        << "EINTR is an interruption, not an error";
}

TEST(StoreFaults, ShortWritesAreCompletedByTheExactLoop)
{
    const std::string path = tempPath("shortwrite");
    FaultInjector inj;
    FaultSpec f;
    f.kind = FaultKind::ShortIo;
    f.bytes = 8;
    f.limit = 6; // several consecutive 8-byte dribbles, then normal
    inj.arm("store.pwrite", f);
    ScopedFaultInjection sc(inj);
    ArtifactStore store(path);
    EXPECT_TRUE(store.put(mkey(1), patternBlob(1)));
    EXPECT_GE(inj.fires("store.pwrite"), 2u);
    Blob out;
    EXPECT_EQ(store.loadStatus(mkey(1), out), StoreStatus::Ok);
    EXPECT_EQ(out, patternBlob(1));
}

TEST(StoreFaults, ShortReadsAreCompletedByTheExactLoop)
{
    const std::string path = tempPath("shortread");
    {
        ArtifactStore store(path);
        ASSERT_TRUE(store.put(mkey(1), patternBlob(1)));
    }
    FaultInjector inj;
    FaultSpec f;
    f.kind = FaultKind::ShortIo;
    f.bytes = 4;
    f.limit = 8;
    inj.arm("store.pread", f);
    ScopedFaultInjection sc(inj);
    ArtifactStore store(path); // recovery scan also reads short
    Blob out;
    EXPECT_EQ(store.loadStatus(mkey(1), out), StoreStatus::Ok);
    EXPECT_EQ(out, patternBlob(1));
}

TEST(StoreFaults, TornAppendIsTrimmedAndTheStoreStaysServable)
{
    const std::string path = tempPath("tornappend");
    ArtifactStore store(path);
    ASSERT_TRUE(store.put(mkey(1), patternBlob(1)));
    {
        FaultInjector inj;
        FaultSpec shortio;
        shortio.kind = FaultKind::ShortIo;
        shortio.bytes = 8;
        shortio.nth = 1;
        inj.arm("store.pwrite", shortio);
        inj.arm("store.pwrite", failWith(EIO, 2));
        ScopedFaultInjection sc(inj);
        EXPECT_FALSE(store.put(mkey(2), patternBlob(2)));
    }
    EXPECT_EQ(store.ioErrors(), 1u);
    EXPECT_FALSE(store.contains(mkey(2)));
    Blob out;
    EXPECT_EQ(store.loadStatus(mkey(1), out), StoreStatus::Ok);
    // The torn bytes were truncated away: a fresh append works and a
    // reopen sees exactly the two acknowledged records.
    EXPECT_TRUE(store.put(mkey(3), patternBlob(3)));
    ArtifactStore reopened(path);
    EXPECT_EQ(reopened.records(), 2u);
    EXPECT_EQ(reopened.loadStatus(mkey(3), out), StoreStatus::Ok);
    EXPECT_EQ(out, patternBlob(3));
}

TEST(StoreFaults, EnospcFailsTheOnePutCleanly)
{
    const std::string path = tempPath("enospc");
    ArtifactStore store(path);
    {
        FaultInjector inj;
        FaultSpec f = failWith(ENOSPC);
        f.limit = 1;
        inj.arm("store.pwrite", f);
        ScopedFaultInjection sc(inj);
        EXPECT_FALSE(store.put(mkey(1), patternBlob(1)));
    }
    EXPECT_EQ(store.ioErrors(), 1u);
    EXPECT_TRUE(store.put(mkey(1), patternBlob(1)))
        << "the store must keep working once space is back";
    EXPECT_EQ(store.records(), 1u);
}

TEST(StoreFaults, RequiredFsyncFailureFailsThePut)
{
    const std::string path = tempPath("fsyncfail");
    StoreOptions so;
    so.fsync = FsyncPolicy::Always;
    ArtifactStore store(path, so);
    ASSERT_TRUE(store.put(mkey(1), patternBlob(1)));
    {
        FaultInjector inj;
        FaultSpec f = failWith(EIO);
        f.limit = 1;
        inj.arm("store.fsync", f);
        ScopedFaultInjection sc(inj);
        // Under Always, acknowledged == durable: an un-syncable append
        // must not be acknowledged, and is trimmed so the log never
        // holds bytes the caller was told failed.
        EXPECT_FALSE(store.put(mkey(2), patternBlob(2)));
    }
    ArtifactStore reopened(path, so);
    EXPECT_EQ(reopened.records(), 1u);
    EXPECT_FALSE(reopened.contains(mkey(2)));
}

TEST(StoreFaults, FsyncPoliciesSyncWhenPromised)
{
    {
        ArtifactStore store(tempPath("fs_never"));
        for (std::uint64_t i = 1; i <= 8; ++i)
            ASSERT_TRUE(store.put(mkey(i), patternBlob(i)));
        EXPECT_EQ(store.fsyncs(), 0u);
    }
    {
        StoreOptions so;
        so.fsync = FsyncPolicy::Always;
        ArtifactStore store(tempPath("fs_always"), so);
        for (std::uint64_t i = 1; i <= 8; ++i)
            ASSERT_TRUE(store.put(mkey(i), patternBlob(i)));
        EXPECT_EQ(store.fsyncs(), 8u);
    }
    {
        StoreOptions so;
        so.fsync = FsyncPolicy::Interval;
        so.fsyncIntervalBytes = 1; // every append crosses the line
        ArtifactStore store(tempPath("fs_interval"), so);
        for (std::uint64_t i = 1; i <= 8; ++i)
            ASSERT_TRUE(store.put(mkey(i), patternBlob(i)));
        EXPECT_EQ(store.fsyncs(), 8u);
    }
    {
        StoreOptions so;
        so.fsync = FsyncPolicy::Interval;
        so.fsyncIntervalBytes = 1 << 30; // never crossed by this test
        ArtifactStore store(tempPath("fs_interval_big"), so);
        for (std::uint64_t i = 1; i <= 8; ++i)
            ASSERT_TRUE(store.put(mkey(i), patternBlob(i)));
        EXPECT_EQ(store.fsyncs(), 0u);
    }
}

TEST(StoreFaults, FsyncPolicyParsesAndRejects)
{
    EXPECT_EQ(fsyncPolicyFromString("never"), FsyncPolicy::Never);
    EXPECT_EQ(fsyncPolicyFromString("interval"), FsyncPolicy::Interval);
    EXPECT_EQ(fsyncPolicyFromString("always"), FsyncPolicy::Always);
    EXPECT_THROW(fsyncPolicyFromString("sometimes"), FatalError);
    EXPECT_STREQ(fsyncPolicyName(FsyncPolicy::Interval), "interval");
}

TEST(StoreFaults, CompactRenameFailureLeavesTheOriginalIntact)
{
    const std::string path = tempPath("compact_rename");
    ArtifactStore store(path);
    for (std::uint64_t i = 1; i <= 3; ++i)
        ASSERT_TRUE(store.put(mkey(i), patternBlob(i)));
    ASSERT_TRUE(store.put(mkey(1), patternBlob(11))); // dead record
    {
        FaultInjector inj;
        inj.arm("store.rename", failWith(EIO));
        ScopedFaultInjection sc(inj);
        EXPECT_THROW(store.compact(), FatalError);
    }
    ArtifactStore reopened(path);
    EXPECT_EQ(reopened.records(), 3u);
    Blob out;
    EXPECT_EQ(reopened.loadStatus(mkey(1), out), StoreStatus::Ok);
    EXPECT_EQ(out, patternBlob(11));
}

TEST(StoreFaults, CompactTmpFsyncFailureLeavesTheOriginalIntact)
{
    const std::string path = tempPath("compact_fsync");
    ArtifactStore store(path); // policy Never: the only fsync in
                               // flight is compact's barrier
    for (std::uint64_t i = 1; i <= 3; ++i)
        ASSERT_TRUE(store.put(mkey(i), patternBlob(i)));
    ASSERT_TRUE(store.put(mkey(2), patternBlob(2))); // dead record so
                                                     // compact runs
    {
        FaultInjector inj;
        inj.arm("store.fsync", failWith(EIO, 1));
        ScopedFaultInjection sc(inj);
        EXPECT_THROW(store.compact(), FatalError);
    }
    ArtifactStore reopened(path);
    EXPECT_EQ(reopened.records(), 3u);
}

TEST(StoreFaults, StaleCompactTmpIsRemovedOnOpen)
{
    const std::string path = tempPath("staletmp");
    const std::string tmp = path + ".compact.tmp";
    {
        ArtifactStore store(path);
        ASSERT_TRUE(store.put(mkey(1), patternBlob(1)));
    }
    // A crashed compaction leaves its temp file behind.
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("leftover", f);
    std::fclose(f);
    ArtifactStore store(path);
    EXPECT_EQ(store.records(), 1u);
    EXPECT_NE(::access(tmp.c_str(), F_OK), 0)
        << "open() must clean up a stale compaction temp file";
}

// ------------------------------------------------------------------
// The fault matrix
// ------------------------------------------------------------------

enum class Op { Open, Put, Load, Compact, Restart };

constexpr Op kOps[] = {Op::Open, Op::Put, Op::Load, Op::Compact,
                       Op::Restart};

const char *
opName(Op op)
{
    switch (op) {
    case Op::Open: return "open";
    case Op::Put: return "put";
    case Op::Load: return "load";
    case Op::Compact: return "compact";
    case Op::Restart: return "restart";
    }
    return "?";
}

struct Outcome
{
    bool fatal = false;    ///< FatalError escaped (allowed)
    bool panic = false;    ///< PanicError escaped (NEVER allowed)
    bool other = false;    ///< anything else escaped (NEVER allowed)
    bool retFalse = false; ///< the op reported failure by value
};

/**
 * Run @p op against a freshly seeded two-record store at @p path with
 * @p inj installed for exactly the op (seeding and teardown run
 * disarmed). Fills @p expected with what the log must still serve
 * afterwards.
 */
Outcome
runOp(Op op, const std::string &path, FaultInjector *inj,
      std::map<std::uint64_t, Blob> &expected)
{
    std::remove(path.c_str());
    std::remove((path + ".compact.tmp").c_str());
    StoreOptions so;
    so.fsync = FsyncPolicy::Always; // widest syscall coverage per op
    expected.clear();
    expected[1] = patternBlob(1);
    expected[2] = patternBlob(2);

    Outcome out;
    try {
        std::unique_ptr<ArtifactStore> store =
            std::make_unique<ArtifactStore>(path, so);
        for (std::uint64_t i = 1; i <= 2; ++i)
            EXPECT_TRUE(store->put(mkey(i), expected[i]));
        if (op == Op::Compact) {
            // Give compact a dead record to drop.
            expected[1] = patternBlob(11);
            EXPECT_TRUE(store->put(mkey(1), expected[1]));
        }
        if (op == Op::Open)
            store.reset(); // open happens fully under injection

        std::optional<ScopedFaultInjection> scoped;
        if (inj)
            scoped.emplace(*inj);
        switch (op) {
        case Op::Open: {
            ArtifactStore reopened(path, so);
            break;
        }
        case Op::Put: {
            if (!store->put(mkey(9), patternBlob(9)))
                out.retFalse = true;
            else
                expected[9] = patternBlob(9);
            break;
        }
        case Op::Load: {
            Blob b;
            const StoreStatus rc = store->loadStatus(mkey(1), b);
            if (rc != StoreStatus::Ok)
                out.retFalse = true;
            else
                EXPECT_EQ(b, expected[1]);
            EXPECT_NE(rc, StoreStatus::Miss)
                << "a read failure must not masquerade as absence";
            break;
        }
        case Op::Compact: {
            store->compact();
            break;
        }
        case Op::Restart: {
            store.reset(); // close fires under injection too
            ArtifactStore reopened(path, so);
            break;
        }
        }
        scoped.reset(); // uninstall before the teardown close
    } catch (const FatalError &) {
        out.fatal = true;
    } catch (const PanicError &) {
        out.panic = true;
    } catch (...) {
        out.other = true;
    }
    return out;
}

TEST(FaultMatrix, EveryPointEveryCallIndexEveryOp)
{
    const std::string path = tempPath("matrix");
    for (const Op op : kOps) {
        // Discovery: an empty injector counts the syscalls the op
        // makes per point, sizing the sweep below.
        FaultInjector discovery;
        std::map<std::uint64_t, Blob> expected;
        const Outcome base = runOp(op, path, &discovery, expected);
        ASSERT_FALSE(base.fatal || base.panic || base.other ||
                     base.retFalse)
            << opName(op) << " must succeed with nothing armed";

        for (const std::string &point : discovery.touchedPoints()) {
            const std::uint64_t calls = discovery.calls(point);
            ASSERT_GT(calls, 0u);
            for (std::uint64_t nth = 1; nth <= calls; ++nth) {
                FaultInjector inj;
                inj.arm(point, failWith(EIO, nth));
                const Outcome got = runOp(op, path, &inj, expected);
                EXPECT_FALSE(got.panic)
                    << opName(op) << " x " << point << "[" << nth
                    << "]: PanicError is an internal-bug signal, "
                       "never a fault outcome";
                EXPECT_FALSE(got.other)
                    << opName(op) << " x " << point << "[" << nth
                    << "]: unexpected exception type";

                // Whatever happened, the log must reopen to records
                // whose bytes match exactly what was acknowledged.
                ArtifactStore verify(path);
                for (const ArtifactKey &key : verify.keys()) {
                    const auto it = expected.find(key.circuit);
                    ASSERT_NE(it, expected.end())
                        << opName(op) << " x " << point << "[" << nth
                        << "]: store serves a key never acknowledged";
                    Blob b;
                    ASSERT_EQ(verify.loadStatus(key, b), StoreStatus::Ok);
                    EXPECT_EQ(b, it->second)
                        << opName(op) << " x " << point << "[" << nth
                        << "]: surviving record corrupted";
                }
            }
        }
    }
}

// ------------------------------------------------------------------
// Circuit breaker (service disk tier)
// ------------------------------------------------------------------

/** Unique-angle copy of a parameterized base circuit: every request
 *  is a distinct artifact key, forcing disk-tier traffic. */
CompileRequest
uniqueReq(const Circuit &base, const Topology &topo, Rng &rng)
{
    Circuit c(base.numQubits(), base.name());
    for (Gate g : base.gates()) {
        if (gateHasParam(g.type))
            g.param = rng.nextDouble(-3.0, 3.0);
        c.add(std::move(g));
    }
    CompileRequest req = CompileRequest::forCircuit(
        std::move(c), topo, "eqm", CompilerConfig{}, GateLibrary{});
    req.fullCompile = true; // bypass the template tier: every request
                            // must consult the disk tier
    return req;
}

TEST(Breaker, OpensAfterConsecutiveErrorsThenSkips)
{
    ServiceOptions opts;
    opts.storePath = tempPath("breaker_open");
    opts.storeErrorThreshold = 2;
    opts.storeCooldownMs = 60000.0; // no probe inside this test
    CompilerService svc(opts);
    const Circuit base = benchmarkFamily("qaoa_random").make(8);
    const Topology topo = Topology::grid(6);
    Rng rng(9);

    FaultInjector inj;
    inj.arm("store.pwrite", failWith(EIO));
    {
        ScopedFaultInjection sc(inj);
        for (int i = 0; i < 4; ++i)
            svc.compileSync(uniqueReq(base, topo, rng)); // all succeed
    }
    const ServiceStats s = svc.stats();
    EXPECT_EQ(s.tierState, DiskTierState::Degraded);
    EXPECT_EQ(s.storeErrors, 2u)
        << "after the threshold the tier is skipped, not retried";
    EXPECT_GE(s.degradedSkips, 2u);
    EXPECT_EQ(s.requests, 4u);
    EXPECT_EQ(s.misses, 4u);
    EXPECT_EQ(s.requests, s.hits + s.templateHits + s.diskHits +
                              s.misses + s.coalesced);
}

TEST(Breaker, ReadProbeRecoversAfterCooldown)
{
    ServiceOptions opts;
    opts.storePath = tempPath("breaker_recover");
    opts.storeErrorThreshold = 1;
    opts.storeCooldownMs = 5.0;
    CompilerService svc(opts);
    const Circuit base = benchmarkFamily("qaoa_random").make(8);
    const Topology topo = Topology::grid(6);
    Rng rng(11);
    const CompileRequest req = uniqueReq(base, topo, rng);

    {
        FaultInjector inj;
        inj.arm("store.pwrite", failWith(EIO));
        ScopedFaultInjection sc(inj);
        svc.compileSync(req); // write-behind fails -> degraded
    }
    EXPECT_EQ(svc.stats().tierState, DiskTierState::Degraded);
    EXPECT_EQ(svc.stats().recoveries, 0u);

    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    svc.clearCache();
    svc.compileSync(req); // cooldown elapsed: the miss path's probe
                          // re-closes the breaker, then persists
    ServiceStats s = svc.stats();
    EXPECT_EQ(s.tierState, DiskTierState::Ok);
    EXPECT_EQ(s.recoveries, 1u);
    EXPECT_EQ(s.diskWrites, 1u);

    svc.clearCache();
    svc.compileSync(req); // now a genuine disk hit
    s = svc.stats();
    EXPECT_EQ(s.diskHits, 1u);
    EXPECT_EQ(s.requests, s.hits + s.templateHits + s.diskHits +
                              s.misses + s.coalesced);
}

TEST(Breaker, ThresholdZeroDisablesDegradation)
{
    ServiceOptions opts;
    opts.storePath = tempPath("breaker_off");
    opts.storeErrorThreshold = 0;
    CompilerService svc(opts);
    const Circuit base = benchmarkFamily("qaoa_random").make(8);
    const Topology topo = Topology::grid(6);
    Rng rng(13);

    FaultInjector inj;
    inj.arm("store.pwrite", failWith(EIO));
    {
        ScopedFaultInjection sc(inj);
        for (int i = 0; i < 4; ++i)
            svc.compileSync(uniqueReq(base, topo, rng));
    }
    const ServiceStats s = svc.stats();
    EXPECT_EQ(s.storeErrors, 4u) << "errors still counted";
    EXPECT_EQ(s.tierState, DiskTierState::Ok) << "but never degraded";
    EXPECT_EQ(s.degradedSkips, 0u);
}

TEST(Breaker, TierStateIsOffWithoutAStore)
{
    CompilerService svc(ServiceOptions{});
    EXPECT_EQ(svc.stats().tierState, DiskTierState::Off);
    EXPECT_STREQ(diskTierStateName(DiskTierState::Off), "off");
    EXPECT_STREQ(diskTierStateName(DiskTierState::Degraded), "degraded");
}

// ------------------------------------------------------------------
// Concurrency (the TSan matrix runs this binary)
// ------------------------------------------------------------------

TEST(BreakerThreads, PartitionHoldsUnderConcurrentProbabilisticFaults)
{
    ServiceOptions opts;
    opts.storePath = tempPath("breaker_threads");
    opts.storeErrorThreshold = 3;
    opts.storeCooldownMs = 1.0; // flap on purpose: open/probe/close
                                // under contention is the hard case
    CompilerService svc(opts);
    const Circuit base = benchmarkFamily("qaoa_random").make(8);
    const Topology topo = Topology::grid(6);

    FaultInjector inj(42);
    FaultSpec flaky = failWith(EIO);
    flaky.probability = 0.5;
    inj.arm("store.pwrite", flaky);
    inj.arm("store.pread", flaky);
    {
        ScopedFaultInjection sc(inj);
        std::vector<std::thread> threads;
        std::atomic<int> failures{0};
        for (int t = 0; t < 4; ++t) {
            threads.emplace_back([&, t] {
                Rng rng(100 + t);
                for (int i = 0; i < 20; ++i) {
                    try {
                        svc.compileSync(uniqueReq(base, topo, rng));
                    } catch (...) {
                        failures.fetch_add(1);
                    }
                }
            });
        }
        for (std::thread &th : threads)
            th.join();
        EXPECT_EQ(failures.load(), 0)
            << "store faults must never fail a compile";
    }
    const ServiceStats s = svc.stats();
    EXPECT_EQ(s.requests, 80u);
    EXPECT_EQ(s.requests, s.hits + s.templateHits + s.diskHits +
                              s.misses + s.coalesced)
        << "the counter partition survives concurrent degradation";
    svc.drain();
}

} // namespace
} // namespace qompress
