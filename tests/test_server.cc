/**
 * @file
 * qompressd contract tests: real sockets against an in-process
 * QompressServer on an ephemeral loopback port.
 *
 * Pins the public contract in server/server.hh: endpoint behavior and
 * JSON shapes, the error-taxonomy -> status-code table (malformed QASM
 * is a structured 400 that leaves the connection serving, unknown
 * paths 404, wrong methods 405, expired deadlines 504, admission
 * overflow 503), keep-alive + pipelining at the HTTP layer, the
 * /metrics ServiceStats partition invariant, template-tier hits from
 * parameterized sweep traffic, and graceful shutdown. Runs under the
 * TSan CI job (labels: threads;server).
 */

#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "circuits/registry.hh"
#include "common/error.hh"
#include "common/faultpoint.hh"
#include "common/rng.hh"
#include "ir/circuit.hh"
#include "server/histogram.hh"
#include "server/http.hh"
#include "server/server.hh"

namespace qompress {
namespace {

/** Blocking test client over the shared http.hh helpers. */
class TestClient
{
  public:
    TestClient(const std::string &host, int port)
    {
        fd_ = httpConnect(host, port);
        EXPECT_GE(fd_, 0) << "connect to " << host << ":" << port;
    }

    ~TestClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool connected() const { return fd_ >= 0; }

    bool
    send(const std::string &raw)
    {
        return fd_ >= 0 && httpSendAll(fd_, raw);
    }

    bool
    read(int &status, std::string &body, int timeoutMs = 30000)
    {
        return fd_ >= 0 &&
               httpReadResponse(fd_, leftover_, status, body, timeoutMs);
    }

    /** One round trip; returns false on transport failure. */
    bool
    request(const std::string &raw, int &status, std::string &body)
    {
        return send(raw) && read(status, body);
    }

    /** Drain the raw response (status line + headers + body) until
     *  the peer closes. Shed connections are 503'd and closed by the
     *  acceptor, so EOF bounds the read; httpReadResponse discards
     *  headers, which the Retry-After assertion needs to see. */
    std::string
    readRaw(int timeoutMs = 30000)
    {
        std::string out;
        if (fd_ < 0)
            return out;
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(timeoutMs);
        char buf[4096];
        while (std::chrono::steady_clock::now() < deadline) {
            pollfd pfd{fd_, POLLIN, 0};
            if (::poll(&pfd, 1, 100) <= 0)
                continue;
            const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
            if (n <= 0)
                break;
            out.append(buf, static_cast<std::size_t>(n));
        }
        return out;
    }

  private:
    int fd_ = -1;
    std::string leftover_;
};

std::string
postCompile(const std::string &qasm, const std::string &query = "")
{
    return "POST /compile" + query + " HTTP/1.1\r\nHost: t\r\n"
           "Content-Length: " + std::to_string(qasm.size()) +
           "\r\n\r\n" + qasm;
}

std::string
get(const std::string &target, bool close = false)
{
    return "GET " + target + " HTTP/1.1\r\nHost: t\r\n" +
           (close ? "Connection: close\r\n" : "") + "\r\n";
}

/** FaultSpec that fails every matching call with @p err. */
FaultSpec
failWith(int err)
{
    FaultSpec s;
    s.kind = FaultKind::Fail;
    s.err = err;
    return s;
}

/** Value of a header within a raw HTTP response, "" when absent. */
std::string
headerValue(const std::string &raw, const std::string &name)
{
    const auto end = raw.find("\r\n\r\n");
    const std::string head =
        raw.substr(0, end == std::string::npos ? raw.size() : end);
    auto p = head.find("\r\n" + name + ":");
    if (p == std::string::npos)
        return "";
    p += 2 + name.size() + 1;
    const auto e = head.find("\r\n", p);
    std::string v = head.substr(p, e == std::string::npos ? std::string::npos
                                                          : e - p);
    while (!v.empty() && (v.front() == ' ' || v.front() == '\t'))
        v.erase(v.begin());
    while (!v.empty() && (v.back() == ' ' || v.back() == '\r'))
        v.pop_back();
    return v;
}

/** Spin until the server's own counters satisfy `pred`: barriers on
 *  observable state instead of wall-clock sleeps, so sequencing holds
 *  even when TSan stretches the scheduler. */
template <typename Pred>
bool
waitForStats(const QompressServer &server, Pred pred, int timeoutMs = 10000)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeoutMs);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred(server.stats()))
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
}

/** Value of `"key": <number>` within the named /metrics section. */
double
scrape(const std::string &doc, const std::string &section,
       const std::string &key)
{
    const auto s = doc.find("\"" + section + "\"");
    if (s == std::string::npos)
        return -1.0;
    const auto k = doc.find("\"" + key + "\":", s);
    if (k == std::string::npos)
        return -1.0;
    return std::atof(doc.c_str() + k + key.size() + 3);
}

/** Boots a server for a test, ephemeral port, debug endpoints on. */
struct ServerFixture
{
    explicit ServerFixture(ServerOptions opts = {})
    {
        opts.port = 0;
        opts.debugEndpoints = true;
        server = std::make_unique<QompressServer>(opts);
        server->start();
    }

    ~ServerFixture() { server->stop(); }

    TestClient
    client()
    {
        return TestClient("127.0.0.1", server->port());
    }

    std::unique_ptr<QompressServer> server;
};

const char *kValidQasm =
    "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"
    "qreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n";

TEST(Server, CompilesInlineQasmOverPost)
{
    ServerFixture fx;
    TestClient c = fx.client();
    int status = 0;
    std::string body;
    ASSERT_TRUE(c.request(postCompile(kValidQasm), status, body));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"gates\""), std::string::npos);
    EXPECT_NE(body.find("\"total_eps\""), std::string::npos);
    EXPECT_NE(body.find("\"strategy\""), std::string::npos);
}

TEST(Server, FamilyBatchOverGet)
{
    ServerFixture fx;
    TestClient c = fx.client();
    int status = 0;
    std::string body;
    ASSERT_TRUE(c.request(get("/compile?family=bv&sizes=8,10"), status,
                          body));
    EXPECT_EQ(status, 200);
    // Batch responses wrap the per-size objects.
    EXPECT_NE(body.find("\"results\""), std::string::npos);
    EXPECT_NE(body.find("bv_8"), std::string::npos);
    EXPECT_NE(body.find("bv_10"), std::string::npos);
}

TEST(Server, MalformedQasmIsStructured400AndServerKeepsServing)
{
    ServerFixture fx;
    TestClient c = fx.client();
    int status = 0;
    std::string body;
    // Duplicate operand: the satellite parser fix, via the network.
    ASSERT_TRUE(c.request(
        postCompile("OPENQASM 2.0; qreg q[2]; cx q[0],q[0];"), status,
        body));
    EXPECT_EQ(status, 400);
    EXPECT_NE(body.find("\"error\""), std::string::npos);
    EXPECT_NE(body.find("duplicate qubit operand"), std::string::npos);
    EXPECT_NE(body.find("line"), std::string::npos);

    // The same keep-alive connection must still serve good requests.
    ASSERT_TRUE(c.request(postCompile(kValidQasm), status, body));
    EXPECT_EQ(status, 200);
}

TEST(Server, AdversarialQasmNeverEscapesAsPanicOr500)
{
    ServerFixture fx;
    const std::vector<std::string> bad = {
        "OPENQASM 2.0; qreg q[99999999999999]; x q[0];",
        "OPENQASM 2.0; qreg q[1]; rz(1.2.3) q[0];",
        "OPENQASM 2.0; qreg q[1]; rz(1e) q[0];",
        "OPENQASM 2.0; qreg q[2]; cx q[0],",
        "OPENQASM 2.0; qreg q[2]; cx r[0],q[1];",
        "OPENQASM 2.0; cx q[0],q[1];",
        "OPENQASM 2.0; qreg q[1]; rz(" + std::string(300, '(') + "1" +
            std::string(300, ')') + ") q[0];",
        "",
    };
    TestClient c = fx.client();
    for (const std::string &qasm : bad) {
        int status = 0;
        std::string body;
        ASSERT_TRUE(c.request(postCompile(qasm), status, body)) << qasm;
        EXPECT_EQ(status, 400) << qasm;
        EXPECT_NE(body.find("\"error\""), std::string::npos) << qasm;
    }
    int status = 0;
    std::string body;
    ASSERT_TRUE(c.request(get("/healthz"), status, body));
    EXPECT_EQ(status, 200);
}

TEST(Server, UnknownStrategyFamilyTopologyAre400)
{
    ServerFixture fx;
    TestClient c = fx.client();
    int status = 0;
    std::string body;
    ASSERT_TRUE(c.request(postCompile(kValidQasm, "?strategy=nope"),
                          status, body));
    EXPECT_EQ(status, 400);
    ASSERT_TRUE(c.request(get("/compile?family=nope&size=8"), status,
                          body));
    EXPECT_EQ(status, 400);
    ASSERT_TRUE(c.request(postCompile(kValidQasm, "?topology=nope"),
                          status, body));
    EXPECT_EQ(status, 400);
}

TEST(Server, RoutingErrors404And405)
{
    ServerFixture fx;
    TestClient c = fx.client();
    int status = 0;
    std::string body;
    ASSERT_TRUE(c.request(get("/nope"), status, body));
    EXPECT_EQ(status, 404);
    ASSERT_TRUE(c.request("DELETE /compile HTTP/1.1\r\nHost: t\r\n\r\n",
                          status, body));
    EXPECT_EQ(status, 405);
}

TEST(Server, MalformedHttpIs400AndCountsAsClientError)
{
    ServerFixture fx;
    {
        TestClient c = fx.client();
        int status = 0;
        std::string body;
        ASSERT_TRUE(c.request("GARBAGE\r\n\r\n", status, body));
        EXPECT_EQ(status, 400);
    }
    const ServerStats s = fx.server->stats();
    EXPECT_GE(s.clientErrors, 1u);
    EXPECT_EQ(s.serverErrors, 0u);
}

TEST(Server, ZeroDeadlineIsDeterministic504)
{
    ServerFixture fx;
    TestClient c = fx.client();
    int status = 0;
    std::string body;
    ASSERT_TRUE(c.request(postCompile(kValidQasm, "?deadline_ms=0"),
                          status, body));
    EXPECT_EQ(status, 504);
    EXPECT_NE(body.find("deadline"), std::string::npos);
    // Header spelling too.
    ASSERT_TRUE(c.request("POST /compile HTTP/1.1\r\nHost: t\r\n"
                          "X-Deadline-Ms: 0\r\nContent-Length: " +
                              std::to_string(std::string(kValidQasm)
                                                 .size()) +
                              "\r\n\r\n" + kValidQasm,
                          status, body));
    EXPECT_EQ(status, 504);
    const ServerStats s = fx.server->stats();
    EXPECT_GE(s.deadlineMisses, 2u);
    // A deadline miss is a server-side failure in the stats.
    EXPECT_GE(s.serverErrors, 2u);
    // Liveness after 504s.
    ASSERT_TRUE(c.request(postCompile(kValidQasm), status, body));
    EXPECT_EQ(status, 200);
}

TEST(Server, OverloadShedsWith503)
{
    // One worker, one queue slot. Each step gates on the server's own
    // counters rather than wall-clock sleeps, so the sequencing holds
    // even when TSan stretches the scheduler: the lone worker provably
    // holds the sleeper, the second connection provably occupies the
    // queue slot, and only then does the third connection arrive --
    // which must be shed with a 503 at admission instead of queueing
    // without bound.
    ServerOptions opts;
    opts.workers = 1;
    opts.maxQueue = 1;
    ServerFixture fx(opts);

    TestClient sleeper = fx.client();
    ASSERT_TRUE(sleeper.send("POST /debug/sleep?ms=1500 HTTP/1.1\r\n"
                             "Host: t\r\nContent-Length: 0\r\n\r\n"));
    // Barrier: the worker has parsed the sleeper's request (so it is
    // occupied for the full sleep) and the queue slot is free again.
    ASSERT_TRUE(waitForStats(*fx.server, [](const ServerStats &s) {
        return s.requests >= 1 && s.queueDepth == 0;
    }));

    TestClient queued = fx.client(); // occupies the single queue slot
    ASSERT_TRUE(waitForStats(*fx.server, [](const ServerStats &s) {
        return s.accepted >= 2 && s.queueDepth == 1;
    }));

    // Shedding happens at admission, before any bytes are read, so
    // the 503 arrives unprompted and the acceptor closes the socket.
    TestClient shedMe = fx.client();
    const std::string raw = shedMe.readRaw();
    EXPECT_EQ(raw.rfind("HTTP/1.1 503", 0), 0u) << raw;
    EXPECT_NE(raw.find("queue is full"), std::string::npos) << raw;
    // Retry-After must be a positive integer, not just present.
    const std::string retry = headerValue(raw, "Retry-After");
    ASSERT_FALSE(retry.empty()) << raw;
    EXPECT_EQ(retry.find_first_not_of("0123456789"), std::string::npos)
        << retry;
    EXPECT_GT(std::atoi(retry.c_str()), 0) << retry;

    // The sleeper finishes, then the queued connection gets served:
    // overload sheds the excess, never the admitted work.
    int status = 0;
    std::string body;
    ASSERT_TRUE(sleeper.read(status, body));
    EXPECT_EQ(status, 200);
    // Release the lone worker deterministically: a close-flagged
    // request ends the sleeper's keep-alive hold, so the queued
    // connection is picked up without waiting out the idle timeout.
    ASSERT_TRUE(sleeper.request(get("/healthz", true), status, body));
    EXPECT_EQ(status, 200);
    ASSERT_TRUE(queued.request(get("/healthz"), status, body));
    EXPECT_EQ(status, 200);
    EXPECT_GE(fx.server->stats().shed, 1u);
}

TEST(Server, MetricsExposeServiceStatsAndPartitionHolds)
{
    ServerFixture fx;
    TestClient c = fx.client();
    int status = 0;
    std::string body;
    // Two identical compiles: second must be a memo hit.
    ASSERT_TRUE(c.request(postCompile(kValidQasm), status, body));
    ASSERT_TRUE(c.request(postCompile(kValidQasm), status, body));
    ASSERT_TRUE(c.request(get("/metrics"), status, body));
    EXPECT_EQ(status, 200);
    const double requests = scrape(body, "service", "requests");
    const double hits = scrape(body, "service", "hits");
    const double misses = scrape(body, "service", "misses");
    const double tmpl = scrape(body, "service", "templateHits");
    const double coalesced = scrape(body, "service", "coalesced");
    const double disk = scrape(body, "service", "diskHits");
    EXPECT_EQ(requests, 2.0);
    EXPECT_GE(hits, 1.0);
    EXPECT_EQ(requests, hits + tmpl + disk + misses + coalesced);
    // All cache tiers are visible; persistence keys are exported even
    // with the store off (scrape returns -1 for an absent key).
    EXPECT_GE(scrape(body, "service", "cacheSize"), 1.0);
    EXPECT_GE(scrape(body, "service", "templateCapacity"), 0.0);
    EXPECT_GE(disk, 0.0);
    EXPECT_GE(scrape(body, "service", "bytesInUse"), 0.0);
    EXPECT_GE(scrape(body, "service", "storeRecords"), 0.0);
    EXPECT_GE(scrape(body, "service", "sizeEvictions"), 0.0);
    // Server section + latency histogram.
    EXPECT_GE(scrape(body, "server", "requests"), 2.0);
    EXPECT_GT(scrape(body, "latency", "p99_us"), 0.0);
    EXPECT_GE(scrape(body, "latency", "count"), 2.0);
}

TEST(Server, ParameterizedSweepTrafficHitsTemplateTier)
{
    ServerFixture fx;
    const Circuit base = benchmarkFamily("qaoa_random").make(8);
    Rng rng(7);
    TestClient c = fx.client();
    int status = 0;
    std::string body;
    for (int i = 0; i < 4; ++i) {
        Circuit variant(base.numQubits(), base.name());
        for (Gate g : base.gates()) {
            if (gateHasParam(g.type))
                g.param = rng.nextDouble(-3.0, 3.0);
            variant.add(std::move(g));
        }
        ASSERT_TRUE(c.request(postCompile(variant.toQasm()), status,
                              body));
        EXPECT_EQ(status, 200);
    }
    ASSERT_TRUE(c.request(get("/metrics"), status, body));
    EXPECT_GE(scrape(body, "service", "templateHits"), 3.0);
}

TEST(Server, KeepAliveServesPipelinedRequests)
{
    ServerFixture fx;
    TestClient c = fx.client();
    // Two pipelined requests in one write; both answered in order.
    ASSERT_TRUE(c.send(get("/healthz") + get("/healthz", true)));
    int status = 0;
    std::string body;
    ASSERT_TRUE(c.read(status, body));
    EXPECT_EQ(status, 200);
    ASSERT_TRUE(c.read(status, body));
    EXPECT_EQ(status, 200);
}

TEST(Server, ConcurrentClientsAllSucceed)
{
    ServerOptions opts;
    opts.workers = 4;
    ServerFixture fx(opts);
    std::vector<std::thread> clients;
    std::atomic<int> ok{0};
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&fx, &ok] {
            TestClient c("127.0.0.1", fx.server->port());
            for (int i = 0; i < 5; ++i) {
                int status = 0;
                std::string body;
                if (c.request(postCompile(kValidQasm), status, body) &&
                    status == 200)
                    ok.fetch_add(1);
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(ok.load(), 20);
    const ServerStats s = fx.server->stats();
    EXPECT_EQ(s.serverErrors, 0u);
    EXPECT_EQ(s.ok, 20u);
}

TEST(Server, GracefulStopDrainsAndStopsListening)
{
    auto server = std::make_unique<QompressServer>(ServerOptions{});
    server->start();
    const int port = server->port();
    {
        TestClient c("127.0.0.1", port);
        int status = 0;
        std::string body;
        ASSERT_TRUE(c.request(postCompile(kValidQasm), status, body));
        EXPECT_EQ(status, 200);
    }
    server->stop();
    EXPECT_FALSE(server->running());
    // Stop is idempotent and the port is released.
    server->stop();
    EXPECT_LT(httpConnect("127.0.0.1", port), 0);
}

TEST(Server, HealthzReportsOkThenDrainingAfterBeginDrain)
{
    ServerFixture fx;
    {
        TestClient c = fx.client();
        int status = 0;
        std::string body;
        ASSERT_TRUE(c.request(get("/healthz"), status, body));
        EXPECT_EQ(status, 200);
        EXPECT_NE(body.find("\"ok\""), std::string::npos);
    }

    fx.server->beginDrain();
    EXPECT_TRUE(fx.server->running()); // draining != stopped

    // Draining answers 503 with a Retry-After hint so load balancers
    // bleed traffic away before stop() closes the listener.
    {
        TestClient c = fx.client();
        ASSERT_TRUE(c.send(get("/healthz", /*close=*/true)));
        const std::string raw = c.readRaw();
        EXPECT_NE(raw.find("503"), std::string::npos) << raw;
        EXPECT_NE(raw.find("\"draining\""), std::string::npos) << raw;
        EXPECT_FALSE(headerValue(raw, "Retry-After").empty()) << raw;
    }

    // The data plane keeps serving while draining: only the health
    // signal flips, so in-flight users finish cleanly.
    {
        TestClient c = fx.client();
        int status = 0;
        std::string body;
        ASSERT_TRUE(c.request(postCompile(kValidQasm), status, body));
        EXPECT_EQ(status, 200);
    }
}

TEST(Server, HealthzReportsDegradedWhenDiskTierTrips)
{
    const std::string storePath =
        ::testing::TempDir() + "qompress_server_degraded.qst";
    std::remove(storePath.c_str());

    ServerOptions opts;
    opts.service.storePath = storePath;
    opts.service.storeErrorThreshold = 1;
    opts.service.storeCooldownMs = 60000.0; // stay degraded for the test
    ServerFixture fx(opts);

    {
        FaultInjector inj(7);
        inj.arm("store.pwrite", failWith(EIO));
        ScopedFaultInjection scope(inj);

        // A full compile misses every memory tier and tries the
        // write-behind, which the armed fault fails -> breaker trips.
        TestClient c = fx.client();
        int status = 0;
        std::string body;
        ASSERT_TRUE(c.request(postCompile(kValidQasm, "?full=1"), status,
                              body));
        EXPECT_EQ(status, 200); // degradation is invisible to the caller
    }

    int status = 0;
    std::string body;
    TestClient c = fx.client();
    ASSERT_TRUE(c.request(get("/healthz"), status, body));
    EXPECT_EQ(status, 200); // memory tiers still serve: up, not down
    EXPECT_NE(body.find("\"degraded\""), std::string::npos) << body;

    ASSERT_TRUE(c.request(get("/metrics"), status, body));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"tierState\": \"degraded\""), std::string::npos)
        << body;
    EXPECT_GE(scrape(body, "service", "storeErrors"), 1.0);

    std::remove(storePath.c_str());
}

TEST(Server, DebugEndpointsAreOffByDefault)
{
    ServerOptions opts; // debugEndpoints defaults to false...
    opts.port = 0;
    QompressServer server(opts); // ...and the fixture is not used here
    server.start();
    TestClient c("127.0.0.1", server.port());
    int status = 0;
    std::string body;
    ASSERT_TRUE(c.request("POST /debug/sleep?ms=1 HTTP/1.1\r\nHost: t"
                          "\r\nContent-Length: 0\r\n\r\n",
                          status, body));
    EXPECT_EQ(status, 404);
    server.stop();
}

} // namespace
} // namespace qompress
